package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"strings"
	"testing"

	"tde/internal/iofault"
)

// zoneSpan is the byte range one column's zone frame occupies in a v3
// image, starting at the zone-length field.
type zoneSpan struct {
	table, column string
	start         int // absolute offset of the zone frame (length field)
	zlen          int // zone record length (0 = column has no zone map)
}

// zoneSpans walks a well-formed v3 image and locates every column's zone
// frame, using only the format layout.
func zoneSpans(t testing.TB, img []byte) []zoneSpan {
	t.Helper()
	at := len(fileMagic)
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(img[at:]); at += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(img[at:]); at += 8; return v }
	str := func() string { n := int(u32()); s := string(img[at : at+n]); at += n; return s }
	if v := u32(); v != fileVersion {
		t.Fatalf("not a v3 image (version %d)", v)
	}
	var spans []zoneSpan
	nt := int(u32())
	for i := 0; i < nt; i++ {
		tname := str()
		u64() // rows
		nc := int(u32())
		for j := 0; j < nc; j++ {
			recLen := int(u64())
			u32() // record crc
			cname := tname + "?"
			if n := int(binary.LittleEndian.Uint32(img[at:])); n >= 0 && at+4+n <= len(img) {
				cname = string(img[at+4 : at+4+n])
			}
			at += recLen
			start := at
			zlen := int(u64())
			u32() // zone crc
			at += zlen
			spans = append(spans, zoneSpan{table: tname, column: cname, start: start, zlen: zlen})
		}
	}
	return spans
}

// TestZoneMapsPersistAcrossSave: a v3 round trip must return every
// column's zone map byte-for-byte, not a header-derived approximation.
func TestZoneMapsPersistAcrossSave(t *testing.T) {
	tables := testTables(t)
	img := writeTestImage(t, tables, fileVersion)
	got, err := Read(img)
	if err != nil {
		t.Fatal(err)
	}
	zoned := 0
	for ti, want := range tables {
		for _, wc := range want.Columns {
			gc := got[ti].Column(wc.Name)
			if gc == nil {
				t.Fatalf("column %s.%s lost", want.Name, wc.Name)
			}
			if wc.Zones == nil {
				continue
			}
			zoned++
			if gc.Zones == nil {
				t.Fatalf("%s.%s: zone map not persisted", want.Name, wc.Name)
			}
			if !bytes.Equal(gc.Zones.MarshalBinary(), wc.Zones.MarshalBinary()) {
				t.Errorf("%s.%s: zone map changed across save:\n%+v\n%+v",
					want.Name, wc.Name, gc.Zones, wc.Zones)
			}
		}
	}
	if zoned == 0 {
		t.Fatal("test tables carry no zone maps; the round trip proved nothing")
	}
}

// TestV2ImagesDeriveZones: a pre-zone-map extract still loads, and
// columns whose stream headers prove per-block bounds (affine here) get
// a derived map so old files can still skip.
func TestV2ImagesDeriveZones(t *testing.T) {
	tables := testTables(t)
	img := writeTestImage(t, tables, fileVersionV2)
	got, err := Read(img)
	if err != nil {
		t.Fatalf("v2 image rejected: %v", err)
	}
	var id *Column
	for _, tab := range got {
		if tab.Name == "orders" {
			id = tab.Column("id")
		}
	}
	if id == nil {
		t.Fatal("orders.id missing")
	}
	if id.Zones == nil {
		t.Fatalf("sequential id column (%v) derived no zone map from a v2 image", id.Data.Kind())
	}
	if err := id.Zones.Validate(id.Data); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptZoneFrameDegradesNotWrong pins the v3 decoder's contract for
// hostile zone records: a flipped zone byte costs that column its
// skipping (salvage) or fails the open with a typed corruption error
// (strict) — the column's data is never dropped and never mis-pruned.
func TestCorruptZoneFrameDegradesNotWrong(t *testing.T) {
	tables := testTables(t)
	img := writeTestImage(t, tables, fileVersion)
	for _, zs := range zoneSpans(t, img) {
		if zs.zlen == 0 {
			continue
		}
		mut := append([]byte(nil), img...)
		mut[zs.start+colRecordOverhead+zs.zlen/2] ^= 0x20
		mut = fixupCRC(mut)

		// Strict open refuses, with the damage localized and typed.
		_, _, err := ReadWithOptions(mut, ReadOptions{})
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s.%s: strict open of damaged zone frame: %v", zs.table, zs.column, err)
		}
		var rep *CorruptionReport
		if !errors.As(err, &rep) || len(rep.Entries) != 1 || rep.Entries[0].Column != zs.column {
			t.Fatalf("%s.%s: report does not localize the zone frame: %v", zs.table, zs.column, err)
		}

		// Salvage keeps the column, drops only the skipping.
		got, rep2, err := ReadWithOptions(mut, ReadOptions{Salvage: true})
		if err != nil {
			t.Fatalf("%s.%s: salvage failed: %v", zs.table, zs.column, err)
		}
		if rep2 == nil || len(rep2.Entries) != 1 ||
			!strings.Contains(rep2.Entries[0].Reason, "skipping disabled") {
			t.Fatalf("%s.%s: salvage report %v", zs.table, zs.column, rep2)
		}
		var want, gotc *Column
		for ti, wt := range tables {
			if wt.Name == zs.table {
				want = wt.Column(zs.column)
				gotc = got[ti].Column(zs.column)
			}
		}
		if gotc == nil {
			t.Fatalf("%s.%s: column dropped over zone-frame damage", zs.table, zs.column)
		}
		if gotc.Zones != nil {
			t.Fatalf("%s.%s: damaged zone frame left a zone map attached", zs.table, zs.column)
		}
		for i := 0; i < want.Rows(); i++ {
			if gotc.Format(i) != want.Format(i) {
				t.Fatalf("%s.%s row %d: %q != %q", zs.table, zs.column, i, gotc.Format(i), want.Format(i))
			}
		}
	}
}

// TestZoneFrameLengthOverrunReported: a zone length pointing past the end
// of the file loses the position; the reader must report, not panic or
// misparse what follows.
func TestZoneFrameLengthOverrunReported(t *testing.T) {
	img := writeTestImage(t, testTables(t), fileVersion)
	zs := zoneSpans(t, img)[0]
	mut := append([]byte(nil), img...)
	binary.LittleEndian.PutUint64(mut[zs.start:], 1<<40)
	mut = fixupCRC(mut)
	_, rep, err := ReadWithOptions(mut, ReadOptions{Salvage: true})
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	found := false
	for _, e := range rep.Entries {
		if strings.Contains(e.Reason, "zone map length") {
			found = true
		}
	}
	if !found {
		t.Fatalf("overrunning zone length not reported: %v", rep)
	}
}

// TestQuarantineDropsZonePairAtomically: damaging a column record must
// drop its sibling zone frame with it, while the next column — and its
// zone map — survive intact. A salvaged table pruning with stats for data
// it no longer serves is exactly the hazard this PR fixes.
func TestQuarantineDropsZonePairAtomically(t *testing.T) {
	tables := testTables(t)
	img := writeTestImage(t, tables, fileVersion)
	spans := v2Spans(t, img)
	// Damage orders.id (first column); orders.status and orders.amount
	// follow it in the same table.
	sp := spans[0]
	if sp.column != "id" {
		t.Fatalf("layout changed: first span is %s.%s", sp.table, sp.column)
	}
	mut := append([]byte(nil), img...)
	mut[sp.start+colRecordOverhead+sp.length/2] ^= 0x04
	mut = fixupCRC(mut)

	got, rep, err := ReadWithOptions(mut, ReadOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(rep.Entries) != 1 || rep.Entries[0].Column != "id" {
		t.Fatalf("report %v", rep)
	}
	var orders *Table
	for _, tab := range got {
		if tab.Name == "orders" {
			orders = tab
		}
	}
	if orders == nil {
		t.Fatal("orders quarantined entirely")
	}
	if orders.Column("id") != nil {
		t.Fatal("damaged column survived")
	}
	amount := orders.Column("amount")
	if amount == nil {
		t.Fatal("column after the damaged pair lost (file position not kept)")
	}
	want := tables[0].Column("amount")
	if want.Zones == nil || amount.Zones == nil {
		t.Fatalf("sibling column's zone map lost: want %v, got %v", want.Zones, amount.Zones)
	}
	if !bytes.Equal(amount.Zones.MarshalBinary(), want.Zones.MarshalBinary()) {
		t.Fatal("sibling column's zone map differs after salvage")
	}
}

// TestDeepVerifyCatchesLyingZoneMap: a structurally valid zone record
// whose bounds exclude real values passes a normal open (checksums are
// recomputable by an attacker) but must fail -deep's cross-check.
func TestDeepVerifyCatchesLyingZoneMap(t *testing.T) {
	tables := testTables(t)
	img := writeTestImage(t, tables, fileVersion)
	var amount zoneSpan
	for _, zs := range zoneSpans(t, img) {
		if zs.table == "orders" && zs.column == "amount" {
			amount = zs
		}
	}
	if amount.zlen == 0 {
		t.Fatal("orders.amount carries no zone map")
	}
	mut := append([]byte(nil), img...)
	// Entry layout: rows u32 | nulls u32 | flags u8 | min i64 | max i64.
	// Clamp the entry's claimed max to its min: amounts above it are now
	// outside the claimed range. Recompute the zone CRC and trailer so
	// every structural check passes.
	const zoneHdr = 4 + 1 + 4 // block size u32 | flags u8 | entry count u32
	zrec := mut[amount.start+colRecordOverhead : amount.start+colRecordOverhead+amount.zlen]
	entry := zrec[zoneHdr:]
	min := binary.LittleEndian.Uint64(entry[9:])
	binary.LittleEndian.PutUint64(entry[17:], min)
	binary.LittleEndian.PutUint32(mut[amount.start+8:], crc32.ChecksumIEEE(zrec))
	mut = fixupCRC(mut)

	if _, err := Read(mut); err != nil {
		t.Fatalf("structural open should accept the forged map: %v", err)
	}
	_, rep, err := ReadWithOptions(mut, ReadOptions{Salvage: true, DeepVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	if rep != nil {
		for _, e := range rep.Entries {
			if e.Column == "amount" && strings.Contains(e.Reason, "zone") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("deep verify missed the lying zone map: %v", rep)
	}
}

// TestZoneDamageViaIofault exercises the same degradation through the
// file layer: a read-time bit flip inside a zone frame (disk rot, torn
// read) must leave a salvage open with the column intact and skipping
// disabled.
func TestZoneDamageViaIofault(t *testing.T) {
	tables := testTables(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "z.tde")
	if err := WriteFile(path, tables); err != nil {
		t.Fatal(err)
	}
	img := writeTestImage(t, tables, fileVersion)
	var target zoneSpan
	for _, zs := range zoneSpans(t, img) {
		if zs.zlen > 0 {
			target = zs
			break
		}
	}
	if target.zlen == 0 {
		t.Fatal("no zoned column")
	}
	inj := iofault.NewInjector(nil)
	inj.Script(iofault.Fault{Op: iofault.OpReadFile,
		FlipByteOffset: int64(target.start + colRecordOverhead), FlipBitMask: 0x10})
	got, rep, err := ReadFileFS(inj, path, ReadOptions{Salvage: true})
	if err != nil {
		t.Fatalf("salvage under fault: %v", err)
	}
	if rep == nil || len(rep.Entries) == 0 ||
		!strings.Contains(rep.Entries[0].Reason, "skipping disabled") {
		t.Fatalf("fault not reported as zone damage: %v", rep)
	}
	for _, tab := range got {
		if tab.Name != target.table {
			continue
		}
		c := tab.Column(target.column)
		if c == nil {
			t.Fatal("column dropped over zone damage")
		}
		if c.Zones != nil {
			t.Fatal("zone map survived its own damage")
		}
	}
}
