// Package storage implements the TDE column store: columns whose main data
// is always fixed width (uncompressed scalars, indexes into a scalar
// dictionary, or offsets into a string heap — Sect. 2.3.2), tables, and
// the single-file database format of Sect. 2.3.3.
package storage

import (
	"fmt"

	"tde/internal/enc"
	"tde/internal/heap"
	"tde/internal/types"
)

// Column is one stored column. The main Data stream is fixed-width and
// encoded (internal/enc); the paper's compression/encoding distinction
// appears here: Dict and Heap are *compression* (column-level dictionaries
// the optimizer can see and join against), while the Data stream's
// internal format is *encoding* (invisible to the rest of the system).
type Column struct {
	Name      string
	Type      types.Type
	Collation types.Collation

	// Data is the fixed-width main stream. Plain scalar columns store
	// value bits; dictionary-compressed columns store indexes into Dict;
	// string columns store byte-offset tokens into Heap.
	Data *enc.Stream

	// Dict is the scalar compression dictionary (sorted ascending) for
	// dictionary-compressed fixed-width columns; nil otherwise.
	Dict []uint64

	// Heap is the string heap for string columns; nil otherwise.
	Heap *heap.Heap

	// Meta carries the properties extracted during load (Sect. 3.4.2).
	Meta enc.Metadata

	// Zones holds the per-block zone map (DESIGN.md §15); nil when the
	// column has none, which consumers must treat as "cannot skip".
	Zones *enc.ZoneMap
}

// Rows returns the column's logical row count.
func (c *Column) Rows() int {
	if c.Data == nil {
		return 0
	}
	return c.Data.Len()
}

// DictCompressed reports whether the column is dictionary-compressed (its
// data values are tokens into a scalar dictionary).
func (c *Column) DictCompressed() bool { return c.Dict != nil }

// Signed reports whether the column's raw values are interpreted as
// signed; token-valued columns (strings, dictionary-compressed) are not.
func (c *Column) Signed() bool {
	if c.Dict != nil || c.Type == types.String {
		return false
	}
	switch c.Type {
	case types.Integer, types.Date, types.Timestamp:
		return true
	}
	return false
}

// Value returns row i's value bits, resolving dictionary compression and
// sign-extending narrow widths for signed columns.
func (c *Column) Value(i int) uint64 {
	v := c.Data.Get(i)
	if c.Dict != nil {
		if v == types.NullToken&enc.WidthMask(c.Data.Width()) {
			return types.NullBits(c.Type)
		}
		return c.Dict[v]
	}
	return c.ResolveRaw(v)
}

// ResolveRaw turns a raw stream value into full-width value bits
// (sign-extending signed columns and widening the NULL sentinel).
func (c *Column) ResolveRaw(v uint64) uint64 {
	w := c.Data.Width()
	if w == 8 {
		return v
	}
	if c.Type == types.String {
		if v == types.NullToken&enc.WidthMask(w) {
			return types.NullToken
		}
		return v
	}
	if c.Signed() {
		return uint64(enc.SignExtend(v, w))
	}
	return v
}

// StringAt returns row i's string value. Only valid for string columns.
func (c *Column) StringAt(i int) string {
	tok := c.Data.Get(i)
	if tok == types.NullToken&enc.WidthMask(c.Data.Width()) {
		return ""
	}
	return c.Heap.Get(tok)
}

// IsNull reports whether row i is NULL. Dictionary-compressed columns can
// carry NULL either as the token sentinel or as the type sentinel inside
// the dictionary (a converted column keeps its sentinel as an entry).
func (c *Column) IsNull(i int) bool {
	v := c.Data.Get(i)
	if c.Type == types.String {
		return v == types.NullToken&enc.WidthMask(c.Data.Width())
	}
	if c.Dict != nil {
		if v == types.NullToken&enc.WidthMask(c.Data.Width()) {
			return true
		}
		return types.IsNull(c.Type, c.Dict[v])
	}
	return types.IsNull(c.Type, c.ResolveRaw(v))
}

// Format renders row i for display and text export.
func (c *Column) Format(i int) string {
	if c.Type == types.String {
		if c.IsNull(i) {
			return "NULL"
		}
		return c.StringAt(i)
	}
	return types.Format(c.Type, c.Value(i))
}

// Validate performs structural checks used by the file reader.
func (c *Column) Validate() error {
	if c.Data == nil {
		return fmt.Errorf("storage: column %q has no data stream", c.Name)
	}
	if c.Type == types.String && c.Heap == nil {
		return fmt.Errorf("storage: string column %q has no heap", c.Name)
	}
	if c.Dict != nil && c.Type == types.String {
		return fmt.Errorf("storage: string column %q cannot be scalar-dictionary compressed", c.Name)
	}
	return nil
}

// Table is a named set of equal-length columns.
type Table struct {
	Name    string
	Columns []*Column
}

// Rows returns the table's row count.
func (t *Table) Rows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Rows()
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks column lengths agree.
func (t *Table) Validate() error {
	rows := -1
	for _, c := range t.Columns {
		if err := c.Validate(); err != nil {
			return err
		}
		if rows == -1 {
			rows = c.Rows()
		} else if c.Rows() != rows {
			return fmt.Errorf("storage: table %q column %q has %d rows, want %d",
				t.Name, c.Name, c.Rows(), rows)
		}
	}
	return nil
}

// PhysicalSize returns the stored byte size of all streams, heaps and
// dictionaries — the "physical size" axis of Figure 5.
func (t *Table) PhysicalSize() int {
	total := 0
	for _, c := range t.Columns {
		total += c.Data.PhysicalSize()
		if c.Heap != nil {
			total += c.Heap.Size()
		}
		total += len(c.Dict) * 8
	}
	return total
}

// LogicalSize returns the unencoded byte size (values at stream width plus
// heap bytes) — the "logical size" axis of Figure 5.
func (t *Table) LogicalSize() int {
	total := 0
	for _, c := range t.Columns {
		total += c.Data.LogicalSize()
		if c.Heap != nil {
			total += c.Heap.Size()
		}
		total += len(c.Dict) * 8
	}
	return total
}
