package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"tde/internal/iofault"
	"testing"
)

// failAfter injects a write failure after n bytes, simulating a full disk
// or a crash partway through a save.
type failAfter struct {
	w io.Writer
	n int
}

var errInjected = errors.New("injected write failure")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errInjected
	}
	if len(p) > f.n {
		k, _ := f.w.Write(p[:f.n])
		f.n = 0
		return k, errInjected
	}
	f.n -= len(p)
	return f.w.Write(p)
}

func listEntries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestAtomicSavePreservesOldFile kills the write partway and checks the
// previous database file is untouched and no temp files are left behind.
func TestAtomicSavePreservesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.tde")

	tables := []*Table{{Name: "t", Columns: []*Column{
		buildIntColumn(t, "x", []int64{1, 2, 3, 4, 5}),
	}}}
	if err := WriteFile(path, tables); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Fail at a range of offsets: header, mid-body, and just before the
	// final flush.
	for _, cut := range []int{0, 1, 7, 64, len(good) / 2, len(good) - 1} {
		err := writeFileAtomic(iofault.OS, path, func(w io.Writer) error {
			return Write(&failAfter{w: w, n: cut}, tables)
		})
		if !errors.Is(err, errInjected) {
			t.Fatalf("cut=%d: want injected error, got %v", cut, err)
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("cut=%d: original file gone: %v", cut, err)
		}
		if string(after) != string(good) {
			t.Fatalf("cut=%d: original file modified by failed save", cut)
		}
	}
	for _, name := range listEntries(t, dir) {
		if strings.HasPrefix(name, ".tde-save-") {
			t.Errorf("leftover temp file %q after failed save", name)
		}
	}

	// A failed save over a *new* path must not create the destination.
	fresh := filepath.Join(dir, "fresh.tde")
	err = writeFileAtomic(iofault.OS, fresh, func(w io.Writer) error {
		return fmt.Errorf("save aborted")
	})
	if err == nil {
		t.Fatal("want error from aborted save")
	}
	if _, err := os.Stat(fresh); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("aborted save created destination file: %v", err)
	}
}

// TestAtomicSaveRoundTrip checks a successful atomic save is readable and
// replaces prior contents.
func TestAtomicSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.tde")
	if err := os.WriteFile(path, []byte("stale garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	tables := []*Table{{Name: "t", Columns: []*Column{
		buildIntColumn(t, "x", []int64{10, 20, 30}),
	}}}
	if err := WriteFile(path, tables); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Rows() != 3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for _, name := range listEntries(t, dir) {
		if strings.HasPrefix(name, ".tde-save-") {
			t.Errorf("leftover temp file %q after successful save", name)
		}
	}
}
