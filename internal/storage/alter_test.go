package storage

import (
	"math/rand"
	"testing"

	"tde/internal/enc"
	"tde/internal/types"
)

func buildColumn(t *testing.T, typ types.Type, vals []int64, forceRLE bool) *Column {
	t.Helper()
	w := enc.NewWriter(enc.WriterConfig{Signed: true, ConvertOptimal: true,
		Sentinel: types.NullBits(typ), HasSentinel: true})
	for _, v := range vals {
		w.AppendOne(uint64(v))
	}
	s := w.Finish()
	if forceRLE && s.Kind() != enc.RunLength {
		raw := s.DecodeAll()
		maxRun := 1
		var maxV uint64
		run := 1
		for i := 1; i < len(raw); i++ {
			if raw[i] == raw[i-1] {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 1
			}
			if raw[i] > maxV {
				maxV = raw[i]
			}
		}
		var err error
		s, err = enc.BuildRLE(raw, maxRun, maxV)
		if err != nil {
			t.Fatal(err)
		}
	}
	return &Column{Name: "c", Type: typ, Data: s,
		Meta: enc.MetadataFromStats(w.Stats(), true)}
}

func checkDictColumn(t *testing.T, c *Column, vals []int64) {
	t.Helper()
	if c.Dict == nil {
		t.Fatal("column not dictionary compressed")
	}
	for i := 1; i < len(c.Dict); i++ {
		if int64(c.Dict[i]) < int64(c.Dict[i-1]) {
			t.Fatal("dictionary not sorted")
		}
	}
	for i := range vals {
		if got := int64(c.Value(i)); got != vals[i] {
			t.Fatalf("value %d = %d, want %d", i, got, vals[i])
		}
	}
}

func TestConvertDictEncodedColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	domain := []int64{900000, -5, 70, 12345}
	vals := make([]int64, 20000)
	for i := range vals {
		vals[i] = domain[rng.Intn(len(domain))]
	}
	c := buildColumn(t, types.Integer, vals, false)
	if c.Data.Kind() != enc.Dictionary {
		t.Skipf("encoded as %v", c.Data.Kind())
	}
	if err := ConvertToDictCompression(c); err != nil {
		t.Fatal(err)
	}
	checkDictColumn(t, c, vals)
	if len(c.Dict) != 4 {
		t.Errorf("dictionary has %d entries", len(c.Dict))
	}
}

func TestConvertFORColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]int64, 30000)
	for i := range vals {
		vals[i] = 50000 + int64(rng.Intn(2000))
	}
	c := buildColumn(t, types.Integer, vals, false)
	if c.Data.Kind() != enc.FrameOfReference {
		t.Skipf("encoded as %v", c.Data.Kind())
	}
	if err := ConvertToDictCompression(c); err != nil {
		t.Fatal(err)
	}
	checkDictColumn(t, c, vals)
	// The envelope dictionary may contain absent values (Sect. 3.4.3).
	if len(c.Dict) < 2000 {
		t.Errorf("envelope dictionary has %d entries", len(c.Dict))
	}
}

func TestConvertRLEColumn(t *testing.T) {
	var vals []int64
	for v := 0; v < 40; v++ {
		for j := 0; j < 700; j++ {
			vals = append(vals, int64(v*1000000)) // wide values, long runs
		}
	}
	c := buildColumn(t, types.Integer, vals, true)
	if err := ConvertToDictCompression(c); err != nil {
		t.Fatal(err)
	}
	checkDictColumn(t, c, vals)
	// The token stream should be run-length over narrow tokens
	// ("a scalar dictionary compressed column with a run-length encoded
	// token stream", Sect. 3.4.3).
	if c.Data.Kind() != enc.RunLength {
		t.Errorf("token stream is %v", c.Data.Kind())
	}
	if c.Data.Width() != 1 {
		t.Errorf("token width %d", c.Data.Width())
	}
}

func TestConvertRejectsUnsupported(t *testing.T) {
	// Raw (incompressible) column.
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(rng.Uint64() >> 1)
	}
	c := buildColumn(t, types.Integer, vals, false)
	if c.Data.Kind() != enc.None {
		t.Skipf("encoded as %v", c.Data.Kind())
	}
	if err := ConvertToDictCompression(c); err == nil {
		t.Fatal("raw column converted")
	}
	// Strings use heap compression.
	sc := &Column{Name: "s", Type: types.String, Data: c.Data}
	if err := ConvertToDictCompression(sc); err == nil {
		t.Fatal("string column converted")
	}
}

func TestConvertIdempotent(t *testing.T) {
	vals := []int64{5, 5, 9, 9, 9, 5}
	c := buildColumn(t, types.Integer, vals, false)
	c.Dict = []uint64{5, 9} // pretend already compressed
	if err := ConvertToDictCompression(c); err != nil {
		t.Fatal("already-compressed column rejected")
	}
}

func TestConvertWithNulls(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	domain := []int64{10, 20, 30}
	vals := make([]int64, 8000)
	for i := range vals {
		vals[i] = domain[rng.Intn(len(domain))]
	}
	vals[100] = types.NullInteger
	vals[5000] = types.NullInteger
	c := buildColumn(t, types.Integer, vals, false)
	if c.Data.Kind() != enc.Dictionary {
		t.Skipf("encoded as %v", c.Data.Kind())
	}
	if err := ConvertToDictCompression(c); err != nil {
		t.Fatal(err)
	}
	if !c.IsNull(100) || !c.IsNull(5000) {
		t.Error("nulls lost in conversion")
	}
	if c.IsNull(0) {
		t.Error("phantom null")
	}
	if int64(c.Value(0)) != vals[0] {
		t.Error("values corrupted")
	}
}
