package storage

import (
	"fmt"
	"strings"

	"tde/internal/corrupt"
)

// ErrCorrupt is the sentinel matched (via errors.Is) by every corruption
// or format error produced while decoding a database image, including the
// enc and heap layers' FromBytes errors. It is the same value as
// corrupt.Err, re-exported at the layer most callers import.
var ErrCorrupt = corrupt.Err

// UnsupportedVersionError reports a well-formed file whose format version
// is newer than this build understands. It is deliberately not a
// corruption error: the file may be perfectly intact.
type UnsupportedVersionError struct {
	Version uint32
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("storage: unsupported format version %d (this build reads versions 1-%d)",
		e.Version, fileVersion)
}

// CorruptionEntry localizes one damaged region of a database file.
type CorruptionEntry struct {
	// Table is the owning table's name; "" for file-level damage.
	Table string
	// Column is the damaged column's name ("#N" when the name itself is
	// unreadable); "" when the whole table or file is affected.
	Column string
	// Offset is the absolute byte offset of the damaged record in the
	// file, or -1 when unknown.
	Offset int64
	// Length is the damaged record's length in bytes, 0 when unknown.
	Length int64
	// Reason describes what failed (checksum mismatch, truncation, ...).
	Reason string
}

func (e CorruptionEntry) String() string {
	loc := "file"
	switch {
	case e.Table != "" && e.Column != "":
		loc = fmt.Sprintf("table %q column %q", e.Table, e.Column)
	case e.Table != "":
		loc = fmt.Sprintf("table %q", e.Table)
	}
	if e.Offset >= 0 {
		if e.Length > 0 {
			return fmt.Sprintf("%s at offset %d (%d bytes): %s", loc, e.Offset, e.Length, e.Reason)
		}
		return fmt.Sprintf("%s at offset %d: %s", loc, e.Offset, e.Reason)
	}
	return fmt.Sprintf("%s: %s", loc, e.Reason)
}

// CorruptionReport is the structured result of verifying or salvaging a
// database image: one entry per damaged (quarantined) region. It doubles
// as the error returned by strict opens of damaged files, so callers can
// errors.As for the detail and errors.Is(err, ErrCorrupt) for the class.
type CorruptionReport struct {
	// Path is the file the report describes, when read from disk.
	Path string
	// Entries lists each damaged region, in file order.
	Entries []CorruptionEntry
}

func (r *CorruptionReport) add(e CorruptionEntry) { r.Entries = append(r.Entries, e) }

// Error summarizes the report on one line.
func (r *CorruptionReport) Error() string {
	name := r.Path
	if name == "" {
		name = "database image"
	}
	if len(r.Entries) == 0 {
		return fmt.Sprintf("storage: %s: corrupt", name)
	}
	return fmt.Sprintf("storage: %s: corrupt (%d damaged regions; first: %s)",
		name, len(r.Entries), r.Entries[0])
}

// Unwrap makes every report match ErrCorrupt under errors.Is.
func (r *CorruptionReport) Unwrap() error { return ErrCorrupt }

// String renders the full report, one entry per line.
func (r *CorruptionReport) String() string {
	var b strings.Builder
	name := r.Path
	if name == "" {
		name = "database image"
	}
	fmt.Fprintf(&b, "%s: %d damaged region(s)\n", name, len(r.Entries))
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return strings.TrimRight(b.String(), "\n")
}
