package storage

import (
	"fmt"
	"sort"

	"tde/internal/enc"
	"tde/internal/types"
)

// ConvertToDictCompression is the AlterColumn-style conversion of
// Sect. 3.4.3: it turns an encoded scalar column into a dictionary-
// compressed one (column-level sorted scalar dictionary + token data) so
// the optimizer can apply invisible joins — pushing expensive per-value
// calculations (like date part extraction) down to the small domain.
//
// The cheap paths avoid touching the row data entirely:
//
//   - dictionary-encoded columns swap their entries for sorted ranks
//     (O(2^bits));
//   - frame-of-reference columns take the envelope dictionary and a
//     zeroed frame (O(2^bits); the dictionary may contain values absent
//     from the column);
//   - run-length columns go through decomposition: the value stream is
//     dictionary-compressed and the run stream rebuilt over tokens
//     (O(runs)).
//
// Raw, delta and affine columns would require a full rewrite and are
// rejected; callers can re-encode first if the conversion is worth it.
func ConvertToDictCompression(col *Column) error {
	if col.Dict != nil {
		return nil // already compressed
	}
	if col.Type == types.String {
		return fmt.Errorf("storage: string columns use heap compression, not scalar dictionaries")
	}
	signed := col.Signed()
	switch col.Data.Kind() {
	case enc.Dictionary:
		dict, err := enc.DictEncodingToCompression(col.Data, signed)
		if err != nil {
			return err
		}
		widenDict(dict, col.Data.Width(), signed)
		col.Dict = dict
		// Tokens are ranks now; narrow them if the encoding permits.
		if w := enc.MinWidth(col.Data, false); w < col.Data.Width() {
			_ = enc.Narrow(col.Data, w, false)
		}
	case enc.FrameOfReference:
		dict, err := enc.FORToScalarDictionary(col.Data)
		if err != nil {
			return err
		}
		widenDict(dict, col.Data.Width(), signed)
		col.Dict = dict
	case enc.RunLength:
		values, counts, err := enc.DecomposeRLE(col.Data)
		if err != nil {
			return err
		}
		dict, tokens := dictCompressValues(values, signed)
		rebuilt, err := enc.RebuildRLE(tokens, counts, col.Data.Len())
		if err != nil {
			return err
		}
		col.Dict = dict
		col.Data = rebuilt
	default:
		return fmt.Errorf("storage: cannot cheaply dictionary-compress a %v column", col.Data.Kind())
	}
	// The column's values are now tokens: refresh metadata accordingly.
	// Zone maps describe the old value domain, so they are rebuilt in the
	// token domain (or dropped when the rewritten stream supports none) —
	// stale zones on a rewritten stream would prune wrongly.
	col.Meta = enc.MetadataFromStream(col.Data, false, types.NullToken, true)
	col.Meta.RowCount = col.Data.Len()
	col.Zones = enc.DeriveZoneMap(col.Data, false, types.NullToken, true)
	return nil
}

// widenDict sign-extends narrow dictionary values to full-width bits so
// Value() resolution needs no width bookkeeping.
func widenDict(dict []uint64, width int, signed bool) {
	if width == 8 {
		return
	}
	for i, v := range dict {
		if signed {
			dict[i] = uint64(enc.SignExtend(v, width))
		} else {
			dict[i] = v & enc.WidthMask(width)
		}
	}
}

// dictCompressValues builds a sorted dictionary over the value stream and
// returns the token stream (Sect. 3.4.3: "a scalar dictionary compressed
// column with a run-length encoded token stream").
func dictCompressValues(values *enc.Stream, signed bool) ([]uint64, *enc.Stream) {
	vals := values.DecodeAll()
	w := values.Width()
	resolve := func(v uint64) uint64 {
		if signed {
			return uint64(enc.SignExtend(v, w))
		}
		return v
	}
	distinct := map[uint64]struct{}{}
	for _, v := range vals {
		distinct[resolve(v)] = struct{}{}
	}
	dict := make([]uint64, 0, len(distinct))
	for v := range distinct {
		dict = append(dict, v)
	}
	sort.Slice(dict, func(a, b int) bool {
		if signed {
			return int64(dict[a]) < int64(dict[b])
		}
		return dict[a] < dict[b]
	})
	rank := make(map[uint64]uint64, len(dict))
	for i, v := range dict {
		rank[v] = uint64(i)
	}
	tw := enc.NewWriter(enc.WriterConfig{Width: enc.TokenWidth(len(dict)), BlockSize: values.BlockSize()})
	for _, v := range vals {
		tw.AppendOne(rank[resolve(v)])
	}
	return dict, tw.Finish()
}
