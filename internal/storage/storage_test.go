package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tde/internal/enc"
	"tde/internal/heap"
	"tde/internal/types"
)

func buildIntColumn(t testing.TB, name string, vals []int64) *Column {
	t.Helper()
	w := enc.NewWriter(enc.WriterConfig{Signed: true, ConvertOptimal: true,
		Sentinel: types.NullBits(types.Integer), HasSentinel: true})
	for _, v := range vals {
		w.AppendOne(uint64(v))
	}
	s := w.Finish()
	return &Column{Name: name, Type: types.Integer, Data: s,
		Meta: enc.MetadataFromStats(w.Stats(), true), Zones: w.Zones()}
}

func buildStringColumn(t testing.TB, name string, vals []string) *Column {
	t.Helper()
	h := heap.New(types.CollateBinary)
	acc := heap.NewAccelerator(h, 0)
	w := enc.NewWriter(enc.WriterConfig{ConvertOptimal: true,
		Sentinel: types.NullToken, HasSentinel: true})
	for _, v := range vals {
		w.AppendOne(acc.Intern(v))
	}
	s := w.Finish()
	return &Column{Name: name, Type: types.String, Collation: types.CollateBinary,
		Data: s, Heap: h, Meta: enc.MetadataFromStats(w.Stats(), false), Zones: w.Zones()}
}

func TestColumnValueAccess(t *testing.T) {
	vals := []int64{5, -3, 1000000, types.NullInteger, 7}
	c := buildIntColumn(t, "x", vals)
	for i, v := range vals {
		if got := int64(c.Value(i)); got != v {
			t.Errorf("Value(%d) = %d, want %d", i, got, v)
		}
	}
	if !c.IsNull(3) || c.IsNull(0) {
		t.Error("null detection wrong")
	}
	if c.Format(3) != "NULL" || c.Format(0) != "5" {
		t.Error("format wrong")
	}
}

func TestStringColumnAccess(t *testing.T) {
	c := buildStringColumn(t, "s", []string{"foo", "bar", "foo", "baz"})
	if c.StringAt(0) != "foo" || c.StringAt(1) != "bar" || c.StringAt(2) != "foo" {
		t.Error("string access wrong")
	}
	if c.Data.Get(0) != c.Data.Get(2) {
		t.Error("accelerator should have deduplicated tokens")
	}
	if c.Heap.Len() != 3 {
		t.Errorf("heap has %d entries", c.Heap.Len())
	}
}

func TestDictCompressedColumn(t *testing.T) {
	// A dictionary-compressed date-like column: tokens into sorted scalars.
	dict := []uint64{100, 200, 300}
	w := enc.NewWriter(enc.WriterConfig{})
	for i := 0; i < 100; i++ {
		w.AppendOne(uint64(i % 3))
	}
	c := &Column{Name: "d", Type: types.Date, Data: w.Finish(), Dict: dict}
	if c.Value(0) != 100 || c.Value(1) != 200 || c.Value(5) != 300 {
		t.Error("dictionary resolution wrong")
	}
	if c.Signed() {
		t.Error("token column must not be treated as signed")
	}
}

func TestNarrowedSignedColumnSignExtends(t *testing.T) {
	vals := []int64{-100, -50, -1, -99}
	c := buildIntColumn(t, "neg", vals)
	if c.Data.Width() == 8 {
		// Narrow it explicitly if the writer did not.
		if err := enc.Narrow(c.Data, 1, true); err != nil {
			t.Skipf("cannot narrow: %v", err)
		}
	}
	for i, v := range vals {
		if got := int64(c.Value(i)); got != v {
			t.Errorf("narrow Value(%d) = %d, want %d", i, got, v)
		}
	}
}

func TestTableValidate(t *testing.T) {
	tab := &Table{Name: "t", Columns: []*Column{
		buildIntColumn(t, "a", []int64{1, 2, 3}),
		buildIntColumn(t, "b", []int64{4, 5, 6}),
	}}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	tab.Columns = append(tab.Columns, buildIntColumn(t, "c", []int64{1}))
	if err := tab.Validate(); err == nil {
		t.Fatal("mismatched row counts accepted")
	}
}

func TestTableLookups(t *testing.T) {
	tab := &Table{Name: "t", Columns: []*Column{
		buildIntColumn(t, "a", []int64{1}),
		buildIntColumn(t, "b", []int64{2}),
	}}
	if tab.Column("b") == nil || tab.Column("z") != nil {
		t.Error("Column lookup wrong")
	}
	if tab.ColumnIndex("a") != 0 || tab.ColumnIndex("b") != 1 || tab.ColumnIndex("z") != -1 {
		t.Error("ColumnIndex wrong")
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	ints := make([]int64, n)
	seq := make([]int64, n)
	strs := make([]string, n)
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		ints[i] = int64(rng.Intn(100))
		seq[i] = int64(i)
		strs[i] = words[rng.Intn(len(words))]
	}
	ints[17] = types.NullInteger
	tab := &Table{Name: "main", Columns: []*Column{
		buildIntColumn(t, "small", ints),
		buildIntColumn(t, "rowid", seq),
		buildStringColumn(t, "word", strs),
	}}
	dictCol := &Column{Name: "tok", Type: types.Integer, Data: tab.Columns[0].Data, Dict: []uint64{9, 8, 7}}
	_ = dictCol

	path := filepath.Join(t.TempDir(), "db.tde")
	if err := WriteFile(path, []*Table{tab}); err != nil {
		t.Fatal(err)
	}
	tables, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].Name != "main" || tables[0].Rows() != n {
		t.Fatalf("catalog wrong: %d tables", len(tables))
	}
	got := tables[0]
	for i := 0; i < n; i += 97 {
		if int64(got.Column("small").Value(i)) != ints[i] {
			t.Fatalf("small[%d] corrupted", i)
		}
		if int64(got.Column("rowid").Value(i)) != seq[i] {
			t.Fatalf("rowid[%d] corrupted", i)
		}
		if got.Column("word").StringAt(i) != strs[i] {
			t.Fatalf("word[%d] corrupted", i)
		}
	}
	if !got.Column("small").IsNull(17) {
		t.Error("null lost in round trip")
	}
	// Metadata must survive.
	md := got.Column("rowid").Meta
	if !md.IsAffine || !md.Dense || !md.Unique {
		t.Errorf("rowid metadata lost: %+v", md)
	}
}

func TestFileDictColumnRoundTrip(t *testing.T) {
	w := enc.NewWriter(enc.WriterConfig{})
	for i := 0; i < 200; i++ {
		w.AppendOne(uint64(i % 4))
	}
	col := &Column{Name: "d", Type: types.Date, Data: w.Finish(),
		Dict: []uint64{10, 20, 30, 40}}
	tab := &Table{Name: "t", Columns: []*Column{col}}
	path := filepath.Join(t.TempDir(), "dict.tde")
	if err := WriteFile(path, []*Table{tab}); err != nil {
		t.Fatal(err)
	}
	tables, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c := tables[0].Column("d")
	if !c.DictCompressed() || len(c.Dict) != 4 {
		t.Fatal("dictionary lost")
	}
	if c.Value(5) != 20 {
		t.Errorf("Value(5) = %d", c.Value(5))
	}
}

func TestFileCorruptionDetected(t *testing.T) {
	tab := &Table{Name: "t", Columns: []*Column{buildIntColumn(t, "a", []int64{1, 2, 3})}}
	path := filepath.Join(t.TempDir(), "c.tde")
	if err := WriteFile(path, []*Table{tab}); err != nil {
		t.Fatal(err)
	}
	buf, _ := os.ReadFile(path)
	buf[len(buf)/2] ^= 0xFF
	if _, err := Read(buf); err == nil {
		t.Fatal("corruption not detected")
	}
	if _, err := Read([]byte("not a database")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(buf[:3]); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestFileTruncationDetected(t *testing.T) {
	tab := &Table{Name: "t", Columns: []*Column{buildIntColumn(t, "a", []int64{1, 2, 3})}}
	path := filepath.Join(t.TempDir(), "t.tde")
	if err := WriteFile(path, []*Table{tab}); err != nil {
		t.Fatal(err)
	}
	buf, _ := os.ReadFile(path)
	if _, err := Read(buf[:len(buf)-10]); err == nil {
		t.Fatal("truncation not detected")
	}
}

func TestSizesReflectEncoding(t *testing.T) {
	// A compressible column's physical size must be far below logical.
	vals := make([]int64, 100000)
	for i := range vals {
		vals[i] = int64(i % 10)
	}
	c := buildIntColumn(t, "tiny", vals)
	tab := &Table{Name: "t", Columns: []*Column{c}}
	if tab.PhysicalSize() >= tab.LogicalSize() {
		t.Errorf("physical %d >= logical %d", tab.PhysicalSize(), tab.LogicalSize())
	}
	if tab.LogicalSize() != c.Data.LogicalSize() {
		t.Error("logical size accounting wrong")
	}
}

func TestReadNeverPanicsOnRandomBytes(t *testing.T) {
	// The single-file reader must reject arbitrary garbage with an error,
	// never a panic; CRC plus bounds-checked parsing guarantee it.
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(4096)
		buf := make([]byte, n)
		rng.Read(buf)
		if trial%3 == 0 && n > 4 {
			copy(buf, "TDE\x01") // valid magic, garbage body
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Read panicked: %v", trial, r)
				}
			}()
			if _, err := Read(buf); err == nil {
				t.Fatalf("trial %d: garbage accepted", trial)
			}
		}()
	}
}

func TestReadNeverPanicsOnMutatedFiles(t *testing.T) {
	tab := &Table{Name: "t", Columns: []*Column{
		buildIntColumn(t, "a", []int64{1, 2, 3, 4, 5}),
		buildStringColumn(t, "s", []string{"x", "y", "x", "z", "y"}),
	}}
	var buf bytes.Buffer
	if err := Write(&buf, []*Table{tab}); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), orig...)
		flips := 1 + rng.Intn(4)
		for f := 0; f < flips; f++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: mutated file panicked: %v", trial, r)
				}
			}()
			// Either the CRC rejects it or (if the flip hit the CRC's own
			// bytes cancelling out — impossible for XOR with nonzero) it
			// errors structurally. Acceptance would mean silent corruption.
			if _, err := Read(mut); err == nil {
				t.Fatalf("trial %d: corruption accepted", trial)
			}
		}()
	}
}
