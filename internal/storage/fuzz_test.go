package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fixupCRC patches the trailer checksum so mutated bodies reach the
// structural parser instead of being rejected at the checksum gate; the
// gate itself is exercised by passing the raw input too.
func fixupCRC(data []byte) []byte {
	if len(data) < len(fileMagic)+8 || string(data[:len(fileMagic)]) != fileMagic {
		return data
	}
	fixed := append([]byte(nil), data...)
	body := fixed[len(fileMagic) : len(fixed)-4]
	binary.LittleEndian.PutUint32(fixed[len(fixed)-4:], crc32.ChecksumIEEE(body))
	return fixed
}

// fuzzSeedTables is the deterministic database behind the fuzz seeds and
// the committed corpus (see TestGenerateFuzzCorpus).
func fuzzSeedTables(tb testing.TB) []*Table {
	return []*Table{{Name: "t", Columns: []*Column{
		buildIntColumn(tb, "id", []int64{1, 2, 3, 4, 5, 6, 7, 8}),
		buildStringColumn(tb, "s", []string{"alpha", "beta", "alpha", "g", "beta", "x", "y", "z"}),
	}}}
}

// walkTables reads every accepted value, capped: a constant-encoded
// column can legally claim billions of rows.
func walkTables(got []*Table) {
	for _, tab := range got {
		rows := tab.Rows()
		if rows > 4096 {
			rows = 4096
		}
		for _, c := range tab.Columns {
			for i := 0; i < rows; i++ {
				c.Format(i)
			}
			if tab.Rows() > 0 {
				c.Format(tab.Rows() - 1)
			}
		}
	}
}

// FuzzStorageRead checks that parsing an arbitrary database image never
// panics: it must return tables or an error, even when the image is a
// mutation of a genuine v1, v2 or v3 file with a corrected checksum, and
// in both strict and salvage modes. The v3 seed puts the zone-map frames
// (DESIGN.md §15) in the mutation path: hostile zone records must degrade
// to no-skipping or a typed error, never a panic.
func FuzzStorageRead(f *testing.F) {
	tables := fuzzSeedTables(f)
	for _, version := range []uint32{fileVersionV1, fileVersionV2, fileVersion} {
		var buf bytes.Buffer
		if err := writeImage(&buf, tables, version); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(fileMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, img := range [][]byte{data, fixupCRC(data)} {
			if got, err := Read(img); err == nil {
				walkTables(got)
			}
			got, rep, err := ReadWithOptions(img, ReadOptions{Salvage: true})
			if err == nil {
				walkTables(got)
			} else if rep != nil {
				t.Fatalf("salvage returned both a report and an error: %v / %v", rep, err)
			}
		}
	})
}

// FuzzSalvageOpen mutates one byte inside one column record of a valid v2
// image (trailer re-checksummed so only the per-column CRC can object)
// and asserts salvage never panics, never fails the open, and always
// quarantines the mutated column.
func FuzzSalvageOpen(f *testing.F) {
	var buf bytes.Buffer
	if err := writeImage(&buf, fuzzSeedTables(f), fileVersion); err != nil {
		f.Fatal(err)
	}
	base := buf.Bytes()
	spans := v2Spans(f, base)

	f.Add(uint32(0), uint32(0), byte(0x01))
	f.Add(uint32(1), uint32(9), byte(0x80))
	f.Add(uint32(0), uint32(1<<16), byte(0xFF))
	f.Add(uint32(1), uint32(3), byte(0))

	f.Fuzz(func(t *testing.T, colIdx, off uint32, xor byte) {
		sp := spans[int(colIdx)%len(spans)]
		rec := sp.length - colRecordOverhead
		pos := sp.start + colRecordOverhead + int(off)%rec
		img := append([]byte(nil), base...)
		img[pos] ^= xor
		img = fixupCRC(img)

		got, rep, err := ReadWithOptions(img, ReadOptions{Salvage: true})
		if err != nil {
			t.Fatalf("salvage open failed on single-column damage: %v", err)
		}
		walkTables(got)
		if xor == 0 {
			if rep != nil {
				t.Fatalf("undamaged image produced report %v", rep)
			}
			return
		}
		// CRC32 detects every single-byte error, so the mutated record
		// must be quarantined: no surviving column may carry its name.
		for _, tab := range got {
			if tab.Name != sp.table {
				continue
			}
			if tab.Column(sp.column) != nil {
				t.Fatalf("mutated column %s.%s (offset %d, xor %#x) survived salvage",
					sp.table, sp.column, pos, xor)
			}
		}
		if rep == nil || len(rep.Entries) == 0 {
			t.Fatalf("mutation at %d not reported", pos)
		}
	})
}

// TestGenerateFuzzCorpus regenerates the committed corpus seeds (genuine
// v1, v2 and v3 images) under testdata/fuzz when REGEN_CORPUS=1 is set;
// these lock the on-disk formats into the coverage corpus so format drift
// is caught even without -fuzz.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_CORPUS") == "" {
		t.Skip("set REGEN_CORPUS=1 to regenerate committed corpus files")
	}
	tables := fuzzSeedTables(t)
	for _, v := range []struct {
		version uint32
		name    string
	}{{fileVersionV1, "seed-v1-image"}, {fileVersionV2, "seed-v2-image"}, {fileVersion, "seed-v3-image"}} {
		var buf bytes.Buffer
		if err := writeImage(&buf, tables, v.version); err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join("testdata", "fuzz", "FuzzStorageRead")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		entry := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(buf.String()))
		if err := os.WriteFile(filepath.Join(dir, v.name), []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
