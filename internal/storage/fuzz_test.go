package storage

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// fixupCRC patches the trailer checksum so mutated bodies reach the
// structural parser instead of being rejected at the checksum gate; the
// gate itself is exercised by passing the raw input too.
func fixupCRC(data []byte) []byte {
	if len(data) < len(fileMagic)+8 || string(data[:len(fileMagic)]) != fileMagic {
		return data
	}
	fixed := append([]byte(nil), data...)
	body := fixed[len(fileMagic) : len(fixed)-4]
	binary.LittleEndian.PutUint32(fixed[len(fixed)-4:], crc32.ChecksumIEEE(body))
	return fixed
}

// FuzzStorageRead checks that parsing an arbitrary database image never
// panics: it must return tables or an error, even when the image is a
// mutation of a genuine file with a corrected checksum.
func FuzzStorageRead(f *testing.F) {
	tables := []*Table{{Name: "t", Columns: []*Column{
		buildIntColumn(f, "id", []int64{1, 2, 3, 4, 5, 6, 7, 8}),
		buildStringColumn(f, "s", []string{"alpha", "beta", "alpha", "g", "beta", "x", "y", "z"}),
	}}}
	var buf bytes.Buffer
	if err := Write(&buf, tables); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(fileMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, img := range [][]byte{data, fixupCRC(data)} {
			got, err := Read(img)
			if err != nil {
				continue
			}
			// Accepted images must be safely readable. Cap the walk: a
			// constant-encoded column can legally claim billions of rows.
			for _, tab := range got {
				rows := tab.Rows()
				if rows > 4096 {
					rows = 4096
				}
				for _, c := range tab.Columns {
					for i := 0; i < rows; i++ {
						c.Format(i)
					}
					if tab.Rows() > 0 {
						c.Format(tab.Rows() - 1)
					}
				}
			}
		}
	})
}
