package storage

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"tde/internal/iofault"
)

// crashSeeds sets how many randomized databases the crash-consistency
// harness saves; CI raises it (go test ./internal/storage/ -crashseeds 128).
var crashSeeds = flag.Int("crashseeds", 64, "randomized databases for the crash-consistency harness")

// randomTables builds a small randomized database: 1-3 tables, mixed int,
// string and dictionary-compressed columns, occasional NULLs.
func randomTables(t testing.TB, rng *rand.Rand) []*Table {
	t.Helper()
	nt := 1 + rng.Intn(3)
	tables := make([]*Table, 0, nt)
	for i := 0; i < nt; i++ {
		rows := 1 + rng.Intn(200)
		nc := 1 + rng.Intn(4)
		tab := &Table{Name: fmt.Sprintf("t%d", i)}
		for j := 0; j < nc; j++ {
			name := fmt.Sprintf("c%d", j)
			if rng.Intn(2) == 0 {
				vals := make([]int64, rows)
				span := int64(1) << uint(2+rng.Intn(40))
				for r := range vals {
					vals[r] = rng.Int63n(span) - span/2
				}
				c := buildIntColumn(t, name, vals)
				if rng.Intn(3) == 0 {
					// Dictionary compression is its own storage shape
					// (extra dict block in the column record); errors here
					// are fine — not every column is convertible.
					_ = ConvertToDictCompression(c)
				}
				tab.Columns = append(tab.Columns, c)
			} else {
				vocab := []string{"alpha", "beta", "gamma", "", "delta-delta", "x"}
				vals := make([]string, rows)
				for r := range vals {
					vals[r] = vocab[rng.Intn(len(vocab))]
				}
				tab.Columns = append(tab.Columns, buildStringColumn(t, name, vals))
			}
		}
		tables = append(tables, tab)
	}
	return tables
}

// TestCrashConsistency is the kill-point harness: for a randomized old
// and new database state, it replays the save killing it at every
// numbered I/O operation (with a randomized torn-write prefix) and
// asserts the file on disk is byte-for-byte either the complete old state
// or the complete new state — never a partial — and always reopens.
func TestCrashConsistency(t *testing.T) {
	for seed := 0; seed < *crashSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))
			oldTables := randomTables(t, rng)
			newTables := randomTables(t, rng)
			dir := t.TempDir()
			path := filepath.Join(dir, "db.tde")

			if err := WriteFile(path, oldTables); err != nil {
				t.Fatal(err)
			}
			oldBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var nb, nb2 bytes.Buffer
			if err := Write(&nb, newTables); err != nil {
				t.Fatal(err)
			}
			// The byte-for-byte oracle requires a deterministic writer.
			if err := Write(&nb2, newTables); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(nb.Bytes(), nb2.Bytes()) {
				t.Fatal("Write is not deterministic; crash oracle invalid")
			}
			newBytes := nb.Bytes()

			// Count the save's kill points with a fault-free probe run.
			probe := iofault.NewInjector(nil)
			if err := WriteFileFS(probe, filepath.Join(dir, "probe.tde"), newTables); err != nil {
				t.Fatal(err)
			}
			n := probe.Ops()
			if n < 5 {
				t.Fatalf("implausibly few kill points (%d): %v", n, probe.Log())
			}

			for k := 1; k <= n; k++ {
				inj := iofault.NewInjector(nil)
				inj.Script(iofault.Fault{Op: -1, AtOp: k, Tear: rng.Intn(1 << 16)})
				saveErr := WriteFileFS(inj, path, newTables)

				onDisk, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("kill at op %d: destination unreadable: %v", k, err)
				}
				switch {
				case bytes.Equal(onDisk, oldBytes), bytes.Equal(onDisk, newBytes):
				default:
					t.Fatalf("kill at op %d: destination is a partial state (%d bytes; old %d, new %d)\nops: %v",
						k, len(onDisk), len(oldBytes), len(newBytes), inj.Log())
				}
				if saveErr == nil && !bytes.Equal(onDisk, newBytes) {
					t.Fatalf("kill at op %d: save reported success but destination is not the new state", k)
				}
				if _, err := Read(onDisk); err != nil {
					t.Fatalf("kill at op %d: surviving state does not reopen: %v", k, err)
				}
				for _, name := range listEntries(t, dir) {
					if strings.HasPrefix(name, ".tde-save-") {
						t.Fatalf("kill at op %d: leftover temp file %q", k, name)
					}
				}
				// Restore the old state so every kill point starts from
				// the same precondition.
				if err := os.WriteFile(path, oldBytes, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			// With no faults the save must land the new state exactly.
			if err := WriteFile(path, newTables); err != nil {
				t.Fatal(err)
			}
			onDisk, _ := os.ReadFile(path)
			if !bytes.Equal(onDisk, newBytes) {
				t.Fatal("fault-free save did not produce the expected image")
			}
		})
	}
}

// TestSaveENOSPC checks a full disk surfaces as ENOSPC and leaves the old
// extract untouched.
func TestSaveENOSPC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.tde")
	tables := testTables(t)
	if err := WriteFile(path, tables); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(path)

	inj := iofault.NewInjector(nil)
	inj.Script(iofault.Fault{Op: iofault.OpWrite, AtCount: 1, Err: syscall.ENOSPC, Tear: 512})
	if err := WriteFileFS(inj, path, tables); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("ENOSPC save modified the destination")
	}
}

// TestOpenReadFault checks read-side I/O errors propagate (not corrupt,
// not a panic).
func TestOpenReadFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.tde")
	if err := WriteFile(path, testTables(t)); err != nil {
		t.Fatal(err)
	}
	inj := iofault.NewInjector(nil)
	inj.Script(iofault.Fault{Op: iofault.OpReadFile, Err: syscall.EIO})
	_, _, err := ReadFileFS(inj, path, ReadOptions{})
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("an I/O error is not corruption")
	}
}

// TestBitFlipAtRestDetected flips one bit during the save's writes (a
// byzantine disk) and at read time, and checks the open always detects it.
func TestBitFlipAtRestDetected(t *testing.T) {
	tables := testTables(t)
	var img bytes.Buffer
	if err := Write(&img, tables); err != nil {
		t.Fatal(err)
	}
	size := int64(img.Len())
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	for trial := 0; trial < 64; trial++ {
		off := rng.Int63n(size)
		mask := byte(1 << uint(rng.Intn(8)))
		path := filepath.Join(dir, fmt.Sprintf("flip%d.tde", trial))

		wr := iofault.NewInjector(nil)
		wr.Script(iofault.Fault{Op: iofault.OpWrite, FlipByteOffset: off, FlipBitMask: mask})
		if err := WriteFileFS(wr, path, tables); err != nil {
			t.Fatalf("trial %d: save failed: %v", trial, err)
		}
		if _, err := ReadFile(path); err == nil {
			t.Fatalf("trial %d: flipped bit at offset %d (mask %#x) opened clean", trial, off, mask)
		}

		// Same flip injected at read time on an intact file.
		good := filepath.Join(dir, "good.tde")
		if err := WriteFile(good, tables); err != nil {
			t.Fatal(err)
		}
		rd := iofault.NewInjector(nil)
		rd.Script(iofault.Fault{Op: iofault.OpReadFile, FlipByteOffset: off, FlipBitMask: mask})
		if _, _, err := ReadFileFS(rd, good, ReadOptions{}); err == nil {
			t.Fatalf("trial %d: read-side flip at offset %d opened clean", trial, off)
		}
	}
}
