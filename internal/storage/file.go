package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"tde/internal/enc"
	"tde/internal/heap"
	"tde/internal/types"
)

// Single-file database format (Sect. 2.3.3: "the database needs to be
// represented by a single file" so users can pick it in a file dialog).
// The internal read-write representation is one stream per column; writing
// a database copies everything into one file, and column-level compression
// is what keeps that unavoidable copy cheap.
//
// Layout (all integers little-endian):
//
//	magic "TDE\x01" | format version u32 | table count u32
//	per table:  name | row count u64 | column count u32
//	per column: name | type u8 | collation u8 | flags u8 |
//	            metadata block | data stream | [heap] | [scalar dict]
//	trailer: crc32 of everything after the magic
//
// Strings and byte blocks are u32-length-prefixed.

const (
	fileMagic   = "TDE\x01"
	fileVersion = 1

	flagHasHeap    = 1 << 0
	flagHeapSorted = 1 << 1
	flagHasDict    = 1 << 2
)

// WriteFile writes tables as a single-file database at path. The write is
// crash-safe: data goes to a temporary file in the target directory, is
// fsynced, and is atomically renamed over the destination — a crash or
// error mid-save never corrupts an existing extract (Sect. 2.3.3's
// single-file contract demands the file a user picks is always complete).
func WriteFile(path string, tables []*Table) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		return Write(w, tables)
	})
}

// writeFileAtomic runs write against a temp file next to path, fsyncs,
// and renames it over path only on full success. On any failure the temp
// file is removed and the previous contents of path are untouched.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tde-save-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Write serializes tables to w in the single-file format.
func Write(w io.Writer, tables []*Table) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)
	ew := &errWriter{w: out}
	ew.u32(fileVersion)
	ew.u32(uint32(len(tables)))
	for _, t := range tables {
		if err := t.Validate(); err != nil {
			return err
		}
		ew.str(t.Name)
		ew.u64(uint64(t.Rows()))
		ew.u32(uint32(len(t.Columns)))
		for _, c := range t.Columns {
			writeColumn(ew, c)
		}
	}
	if ew.err != nil {
		return ew.err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

func writeColumn(ew *errWriter, c *Column) {
	ew.str(c.Name)
	ew.u8(uint8(c.Type))
	ew.u8(uint8(c.Collation))
	var flags uint8
	if c.Heap != nil {
		flags |= flagHasHeap
		if c.Heap.Sorted() {
			flags |= flagHeapSorted
		}
	}
	if c.Dict != nil {
		flags |= flagHasDict
	}
	ew.u8(flags)
	writeMetadata(ew, &c.Meta)
	ew.bytes(c.Data.Bytes())
	if c.Heap != nil {
		ew.bytes(c.Heap.Bytes())
		ew.u64(uint64(c.Heap.Len()))
	}
	if c.Dict != nil {
		ew.u32(uint32(len(c.Dict)))
		for _, v := range c.Dict {
			ew.u64(v)
		}
	}
}

func writeMetadata(ew *errWriter, m *enc.Metadata) {
	ew.u64(uint64(m.RowCount))
	var flags uint16
	set := func(bit int, v bool) {
		if v {
			flags |= 1 << bit
		}
	}
	set(0, m.HasRange)
	set(1, m.RangeExact)
	set(2, m.CardinalityExact)
	set(3, m.NullsKnown)
	set(4, m.HasNulls)
	set(5, m.SortedKnown)
	set(6, m.SortedAsc)
	set(7, m.Dense)
	set(8, m.Unique)
	set(9, m.IsAffine)
	set(10, m.EntriesSorted)
	ew.u16(flags)
	ew.u64(uint64(m.Min))
	ew.u64(uint64(m.Max))
	ew.u64(uint64(m.Cardinality))
	ew.u64(uint64(m.CardinalityUpper))
	ew.u64(uint64(m.AffineBase))
	ew.u64(uint64(m.AffineDelta))
}

// ReadFile loads a single-file database.
func ReadFile(path string) ([]*Table, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Read(buf)
}

// Read parses a single-file database image. Column streams and heaps
// alias buf, so the caller must keep it alive; this mirrors reading from
// a memory-mapped extract.
func Read(buf []byte) ([]*Table, error) {
	if len(buf) < len(fileMagic)+8 || string(buf[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("storage: not a TDE database file")
	}
	body := buf[len(fileMagic) : len(buf)-4]
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("storage: checksum mismatch: file corrupt")
	}
	r := &reader{buf: body}
	if v := r.u32(); v != fileVersion {
		return nil, fmt.Errorf("storage: unsupported format version %d", v)
	}
	nt := int(r.u32())
	// A table costs at least 16 bytes (name length, row count, column
	// count), so a count the buffer cannot hold is corruption — reject it
	// before the count sizes an allocation.
	if nt > len(buf)/16 {
		return nil, fmt.Errorf("storage: implausible table count %d in %d-byte file", nt, len(buf))
	}
	tables := make([]*Table, 0, nt)
	for i := 0; i < nt; i++ {
		t := &Table{Name: r.str()}
		rows := r.u64()
		nc := int(r.u32())
		for j := 0; j < nc; j++ {
			c, err := readColumn(r)
			if err != nil {
				return nil, err
			}
			t.Columns = append(t.Columns, c)
		}
		if r.err != nil {
			return nil, r.err
		}
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if uint64(t.Rows()) != rows {
			return nil, fmt.Errorf("storage: table %q catalog says %d rows, columns say %d",
				t.Name, rows, t.Rows())
		}
		tables = append(tables, t)
	}
	return tables, r.err
}

func readColumn(r *reader) (*Column, error) {
	c := &Column{Name: r.str()}
	c.Type = types.Type(r.u8())
	c.Collation = types.Collation(r.u8())
	flags := r.u8()
	if r.err != nil {
		return nil, r.err
	}
	if c.Type >= types.NumTypes {
		return nil, fmt.Errorf("storage: column %q: invalid type byte %d", c.Name, uint8(c.Type))
	}
	if c.Collation > types.CollateEN {
		return nil, fmt.Errorf("storage: column %q: invalid collation byte %d", c.Name, uint8(c.Collation))
	}
	readMetadata(r, &c.Meta)
	data := r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	s, err := enc.FromBytes(data)
	if err != nil {
		return nil, fmt.Errorf("storage: column %q: %w", c.Name, err)
	}
	c.Data = s
	if flags&flagHasHeap != 0 {
		hb := r.bytes()
		hc := int(r.u64())
		if r.err != nil {
			return nil, r.err
		}
		h, err := heap.FromBytes(hb, hc, c.Collation, flags&flagHeapSorted != 0)
		if err != nil {
			return nil, fmt.Errorf("storage: column %q: %w", c.Name, err)
		}
		c.Heap = h
	}
	if flags&flagHasDict != 0 {
		n := int(r.u32())
		if r.err == nil && (n < 0 || n > 1<<enc.DictMaxBits) {
			return nil, fmt.Errorf("storage: column %q: dictionary size %d out of range", c.Name, n)
		}
		c.Dict = make([]uint64, n)
		for i := range c.Dict {
			c.Dict[i] = r.u64()
		}
	}
	return c, r.err
}

func readMetadata(r *reader, m *enc.Metadata) {
	m.RowCount = int(r.u64())
	flags := r.u16()
	get := func(bit int) bool { return flags&(1<<bit) != 0 }
	m.HasRange = get(0)
	m.RangeExact = get(1)
	m.CardinalityExact = get(2)
	m.NullsKnown = get(3)
	m.HasNulls = get(4)
	m.SortedKnown = get(5)
	m.SortedAsc = get(6)
	m.Dense = get(7)
	m.Unique = get(8)
	m.IsAffine = get(9)
	m.EntriesSorted = get(10)
	m.Min = int64(r.u64())
	m.Max = int64(r.u64())
	m.Cardinality = int(r.u64())
	m.CardinalityUpper = int(r.u64())
	m.AffineBase = int64(r.u64())
	m.AffineDelta = int64(r.u64())
}

// errWriter accumulates the first write error.
type errWriter struct {
	w   io.Writer
	err error
	tmp [8]byte
}

func (ew *errWriter) write(b []byte) {
	if ew.err == nil {
		_, ew.err = ew.w.Write(b)
	}
}

func (ew *errWriter) u8(v uint8) { ew.tmp[0] = v; ew.write(ew.tmp[:1]) }

func (ew *errWriter) u16(v uint16) {
	binary.LittleEndian.PutUint16(ew.tmp[:2], v)
	ew.write(ew.tmp[:2])
}

func (ew *errWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(ew.tmp[:4], v)
	ew.write(ew.tmp[:4])
}

func (ew *errWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(ew.tmp[:8], v)
	ew.write(ew.tmp[:8])
}

func (ew *errWriter) str(s string) {
	ew.u32(uint32(len(s)))
	ew.write([]byte(s))
}

func (ew *errWriter) bytes(b []byte) {
	ew.u32(uint32(len(b)))
	ew.write(b)
}

// reader parses the body with bounds checking.
type reader struct {
	buf []byte
	at  int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.at+n > len(r.buf) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := r.buf[r.at : r.at+n]
	r.at += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string { return string(r.take(int(r.u32()))) }

func (r *reader) bytes() []byte { return r.take(int(r.u32())) }
