package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"tde/internal/corrupt"
	"tde/internal/enc"
	"tde/internal/heap"
	"tde/internal/iofault"
	"tde/internal/types"
)

// Single-file database format (Sect. 2.3.3: "the database needs to be
// represented by a single file" so users can pick it in a file dialog).
// The internal read-write representation is one stream per column; writing
// a database copies everything into one file, and column-level compression
// is what keeps that unavoidable copy cheap.
//
// Layout (all integers little-endian):
//
//	magic "TDE\x01" | format version u32 | table count u32
//	per table:  name | row count u64 | column count u32
//	per column (v2+): record length u64 | record crc32 u32 | record
//	per column (v3):  ... followed by the sibling zone frame:
//	                  zone length u64 | zone crc32 u32 | zone record
//	                  (length 0 = column has no zone map)
//	column record:   name | type u8 | collation u8 | flags u8 |
//	                 metadata block | data stream | [heap] | [scalar dict]
//	trailer: crc32 of everything after the magic
//
// Strings and byte blocks are u32-length-prefixed.
//
// Version 1 files wrote the column record inline with no per-record
// length or checksum; the reader still accepts them. Version 2 makes the
// column record the unit of integrity: a flipped bit damages exactly one
// column, and because the record length precedes the record, a reader can
// skip a damaged column and salvage every other one (ReadOptions.Salvage)
// instead of refusing the whole file on the trailer checksum. Version 3
// appends an independently-checksummed per-block zone map frame after
// each column record (DESIGN.md §15); v1/v2 files still load, deriving
// zone maps from the stream headers where provably safe. The zone frame
// is parsed as a unit with its column: quarantining the column drops its
// zone frame and vice versa (a salvaged table must never prune using
// stats for data it no longer serves), and a damaged zone frame alone
// degrades that column to "no skipping", never a wrong answer.

const (
	fileMagic     = "TDE\x01"
	fileVersion   = 3
	fileVersionV2 = 2
	fileVersionV1 = 1

	flagHasHeap    = 1 << 0
	flagHeapSorted = 1 << 1
	flagHasDict    = 1 << 2

	// colRecordOverhead is the bytes v2 spends per column outside the
	// checksummed record: length u64 + crc32 u32.
	colRecordOverhead = 12
	// colRecordMin is the smallest possible column record: empty name,
	// type/collation/flags, metadata block, empty data stream length.
	colRecordMin = 4 + 3
)

// WriteFile writes tables as a single-file database at path. The write is
// crash-safe: data goes to a temporary file in the target directory, is
// fsynced, and is atomically renamed over the destination — a crash or
// error mid-save never corrupts an existing extract (Sect. 2.3.3's
// single-file contract demands the file a user picks is always complete).
func WriteFile(path string, tables []*Table) error {
	return WriteFileFS(iofault.OS, path, tables)
}

// WriteFileFS is WriteFile against an explicit filesystem; tests inject
// faults by passing an *iofault.Injector.
func WriteFileFS(fs iofault.FS, path string, tables []*Table) error {
	return writeFileAtomic(fs, path, func(w io.Writer) error {
		return Write(w, tables)
	})
}

// writeFileAtomic runs write against a temp file next to path, fsyncs,
// and renames it over path only on full success. On any failure the temp
// file is removed and the previous contents of path are untouched.
func writeFileAtomic(fs iofault.FS, path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := fs.CreateTemp(dir, ".tde-save-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			fs.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	// The rename is durable only once the directory entry itself is on
	// disk; without this a crash right after a "successful" save can roll
	// the directory back to the old file on some filesystems. Best-effort:
	// directories cannot be fsynced on some platforms (and some
	// filesystems return EINVAL), and by this point the data file itself
	// is fsynced and complete.
	_ = fs.SyncDir(dir)
	return nil
}

// Write serializes tables to w in the current (version 3) format.
func Write(w io.Writer, tables []*Table) error {
	return writeImage(w, tables, fileVersion)
}

// writeImage serializes tables at the requested format version. Old
// versions are kept writable so compatibility tests and fuzz corpora can
// produce genuine old-format files.
func writeImage(w io.Writer, tables []*Table, version uint32) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)
	ew := &errWriter{w: out}
	ew.u32(version)
	ew.u32(uint32(len(tables)))
	var scratch bytes.Buffer
	for _, t := range tables {
		if err := t.Validate(); err != nil {
			return err
		}
		ew.str(t.Name)
		ew.u64(uint64(t.Rows()))
		ew.u32(uint32(len(t.Columns)))
		for _, c := range t.Columns {
			if version == fileVersionV1 {
				writeColumnRecord(ew, c)
				continue
			}
			// v2+: frame the record with its length and checksum so the
			// reader can verify — and on mismatch skip — exactly this
			// column.
			scratch.Reset()
			sew := &errWriter{w: &scratch}
			writeColumnRecord(sew, c)
			if sew.err != nil {
				return sew.err
			}
			rec := scratch.Bytes()
			ew.u64(uint64(len(rec)))
			ew.u32(crc32.ChecksumIEEE(rec))
			ew.write(rec)
			if version >= fileVersion {
				// v3: the sibling zone frame, independently checksummed
				// so a flipped zone bit costs skipping, not the column.
				if c.Zones != nil {
					zb := c.Zones.MarshalBinary()
					ew.u64(uint64(len(zb)))
					ew.u32(crc32.ChecksumIEEE(zb))
					ew.write(zb)
				} else {
					ew.u64(0)
					ew.u32(0)
				}
			}
		}
	}
	if ew.err != nil {
		return ew.err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// writeColumnRecord writes the column record body — identical bytes in
// v1 (inline) and v2 (inside the checksummed frame).
func writeColumnRecord(ew *errWriter, c *Column) {
	ew.str(c.Name)
	ew.u8(uint8(c.Type))
	ew.u8(uint8(c.Collation))
	var flags uint8
	if c.Heap != nil {
		flags |= flagHasHeap
		if c.Heap.Sorted() {
			flags |= flagHeapSorted
		}
	}
	if c.Dict != nil {
		flags |= flagHasDict
	}
	ew.u8(flags)
	writeMetadata(ew, &c.Meta)
	ew.bytes(c.Data.Bytes())
	if c.Heap != nil {
		ew.bytes(c.Heap.Bytes())
		ew.u64(uint64(c.Heap.Len()))
	}
	if c.Dict != nil {
		ew.u32(uint32(len(c.Dict)))
		for _, v := range c.Dict {
			ew.u64(v)
		}
	}
}

func writeMetadata(ew *errWriter, m *enc.Metadata) {
	ew.u64(uint64(m.RowCount))
	var flags uint16
	set := func(bit int, v bool) {
		if v {
			flags |= 1 << bit
		}
	}
	set(0, m.HasRange)
	set(1, m.RangeExact)
	set(2, m.CardinalityExact)
	set(3, m.NullsKnown)
	set(4, m.HasNulls)
	set(5, m.SortedKnown)
	set(6, m.SortedAsc)
	set(7, m.Dense)
	set(8, m.Unique)
	set(9, m.IsAffine)
	set(10, m.EntriesSorted)
	ew.u16(flags)
	ew.u64(uint64(m.Min))
	ew.u64(uint64(m.Max))
	ew.u64(uint64(m.Cardinality))
	ew.u64(uint64(m.CardinalityUpper))
	ew.u64(uint64(m.AffineBase))
	ew.u64(uint64(m.AffineDelta))
}

// ReadOptions control how a database image is opened.
type ReadOptions struct {
	// Salvage quarantines damaged columns and tables (reported in the
	// CorruptionReport) and returns the intact remainder, instead of
	// failing the whole open on the first damaged byte.
	Salvage bool
	// DeepVerify additionally walks every value of every column, so
	// damage that passes the structural checks (or hostile images with
	// recomputed checksums) is still caught at open rather than at query
	// time. It costs a full scan of the database.
	DeepVerify bool
}

// ReadFile loads a single-file database, strictly: any corruption fails
// the open with a *CorruptionReport error (match storage.ErrCorrupt).
func ReadFile(path string) ([]*Table, error) {
	tables, _, err := ReadFileFS(iofault.OS, path, ReadOptions{})
	return tables, err
}

// ReadFileFS loads a database from fs under opt. The report is non-nil
// exactly when damage was found; with opt.Salvage the tables returned
// alongside it are the intact remainder and err is nil.
func ReadFileFS(fs iofault.FS, path string, opt ReadOptions) ([]*Table, *CorruptionReport, error) {
	buf, err := fs.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	tables, rep, err := ReadWithOptions(buf, opt)
	if rep != nil {
		rep.Path = path
	}
	return tables, rep, err
}

// Read parses a single-file database image, strictly. Column streams and
// heaps alias buf, so the caller must keep it alive; this mirrors reading
// from a memory-mapped extract.
func Read(buf []byte) ([]*Table, error) {
	tables, _, err := ReadWithOptions(buf, ReadOptions{})
	return tables, err
}

// ReadWithOptions parses a single-file database image. Damage is
// localized into a *CorruptionReport (per column for v2 files); without
// opt.Salvage any damage fails the open with the report as the error,
// with opt.Salvage the intact tables and columns are returned alongside
// it. Unknown future format versions fail with *UnsupportedVersionError.
func ReadWithOptions(buf []byte, opt ReadOptions) ([]*Table, *CorruptionReport, error) {
	if len(buf) < len(fileMagic)+8 || string(buf[:len(fileMagic)]) != fileMagic {
		return nil, nil, corrupt.Wrap(errors.New("storage: not a TDE database file"))
	}
	body := buf[len(fileMagic) : len(buf)-4]
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	crcOK := crc32.ChecksumIEEE(body) == want
	r := &reader{buf: body}
	version := r.u32()
	rep := &CorruptionReport{}
	var tables []*Table
	switch version {
	case fileVersionV1:
		if !crcOK {
			rep.add(CorruptionEntry{Offset: -1,
				Reason: "checksum mismatch (v1 file: damage cannot be localized per column)"})
			if !opt.Salvage {
				return nil, rep, rep
			}
		}
		tables = readTables(r, rep, opt, version)
	case fileVersionV2, fileVersion:
		tables = readTables(r, rep, opt, version)
		if !crcOK && len(rep.Entries) == 0 {
			// Every column record checks out, so the flipped bytes are in
			// the table catalog (or the trailer itself) — unlocalizable.
			rep.add(CorruptionEntry{Offset: -1,
				Reason: "checksum mismatch outside column records (table catalog or trailer damaged)"})
		}
	default:
		return nil, nil, &UnsupportedVersionError{Version: version}
	}
	if len(rep.Entries) > 0 {
		if !opt.Salvage {
			return nil, rep, rep
		}
		return tables, rep, nil
	}
	return tables, nil, nil
}

// fileOff converts the reader's body position to an absolute file offset.
func fileOff(r *reader) int64 { return int64(len(fileMagic) + r.at) }

// readTables parses the table catalog and column records for either
// format version, localizing damage into rep. It returns the tables that
// survive; in strict mode the caller turns a non-empty rep into an error.
func readTables(r *reader, rep *CorruptionReport, opt ReadOptions, version uint32) []*Table {
	nt := int(r.u32())
	// A table costs at least 16 bytes (name length, row count, column
	// count), so a count the buffer cannot hold is corruption — reject it
	// before the count sizes an allocation.
	if r.err != nil || nt < 0 || nt > len(r.buf)/16 {
		rep.add(CorruptionEntry{Offset: -1,
			Reason: fmt.Sprintf("implausible table count %d in %d-byte body", nt, len(r.buf))})
		return nil
	}
	var tables []*Table
	for i := 0; i < nt; i++ {
		tblOff := fileOff(r)
		t := &Table{Name: r.str()}
		rows := r.u64()
		nc := int(r.u32())
		if r.err != nil {
			rep.add(CorruptionEntry{Table: t.Name, Offset: tblOff,
				Reason: fmt.Sprintf("table catalog truncated (table %d of %d)", i+1, nt)})
			return tables
		}
		perCol := colRecordMin
		if version >= fileVersionV2 {
			perCol += colRecordOverhead
		}
		if version >= fileVersion {
			perCol += colRecordOverhead // the zone frame header
		}
		if nc < 0 || nc > (len(r.buf)-r.at)/perCol {
			rep.add(CorruptionEntry{Table: t.Name, Offset: tblOff,
				Reason: fmt.Sprintf("implausible column count %d with %d bytes left", nc, len(r.buf)-r.at)})
			return tables
		}
		t, stop := readTableColumns(r, rep, opt, version, t, rows, nc)
		if t != nil {
			tables = append(tables, t)
		}
		if stop {
			if i+1 < nt {
				rep.add(CorruptionEntry{Offset: fileOff(r),
					Reason: fmt.Sprintf("%d trailing table(s) unreadable past damaged record", nt-i-1)})
			}
			return tables
		}
	}
	return tables
}

// readTableColumns parses one table's columns. It returns the table with
// its surviving columns (nil when the whole table is quarantined or
// empty-but-inconsistent) and stop=true when the file position is lost
// and nothing further can be parsed.
func readTableColumns(r *reader, rep *CorruptionReport, opt ReadOptions,
	version uint32, t *Table, rows uint64, nc int) (*Table, bool) {
	damaged := 0
	stop := false
scan:
	for j := 0; j < nc; j++ {
		recOff := fileOff(r)
		var c *Column
		var err error
		switch version {
		case fileVersionV1:
			// v1 records carry no length, so a damaged record loses the
			// file position: nothing past it can be parsed.
			c, err = parseColumn(r, false)
			if err != nil {
				rep.add(CorruptionEntry{Table: t.Name, Column: columnLabel(c, j), Offset: recOff,
					Reason: err.Error()})
				damaged += nc - j
				stop = true
				break scan
			}
		default:
			recLen := r.u64()
			recCRC := r.u32()
			if r.err != nil {
				rep.add(CorruptionEntry{Table: t.Name, Column: fmt.Sprintf("#%d", j), Offset: recOff,
					Reason: "column record header truncated"})
				damaged += nc - j
				stop = true
				break scan
			}
			if recLen > uint64(len(r.buf)-r.at) {
				rep.add(CorruptionEntry{Table: t.Name, Column: fmt.Sprintf("#%d", j), Offset: recOff,
					Reason: fmt.Sprintf("column record length %d overruns file", recLen)})
				damaged += nc - j
				stop = true
				break scan
			}
			rec := r.take(int(recLen))
			// v3 frames a sibling zone record right after the column
			// record. Consume it before judging the column so the file
			// position stays known, and so quarantining either half of
			// the pair drops the other with it.
			var zrec []byte
			var zcrc uint32
			if version >= fileVersion {
				zOff := fileOff(r)
				zlen := r.u64()
				zcrc = r.u32()
				if r.err != nil {
					rep.add(CorruptionEntry{Table: t.Name, Column: recordName(rec, j), Offset: zOff,
						Reason: "zone map header truncated"})
					damaged += nc - j
					stop = true
					break scan
				}
				if zlen > uint64(len(r.buf)-r.at) {
					rep.add(CorruptionEntry{Table: t.Name, Column: recordName(rec, j), Offset: zOff,
						Reason: fmt.Sprintf("zone map length %d overruns file", zlen)})
					damaged += nc - j
					stop = true
					break scan
				}
				zrec = r.take(int(zlen))
			}
			if crc32.ChecksumIEEE(rec) != recCRC {
				rep.add(CorruptionEntry{Table: t.Name, Column: recordName(rec, j), Offset: recOff,
					Length: int64(recLen) + colRecordOverhead,
					Reason: "column checksum mismatch"})
				damaged++
				continue
			}
			sub := &reader{buf: rec}
			c, err = parseColumn(sub, true)
			if err != nil {
				rep.add(CorruptionEntry{Table: t.Name, Column: recordName(rec, j), Offset: recOff,
					Length: int64(recLen) + colRecordOverhead,
					Reason: err.Error()})
				damaged++
				continue
			}
			if len(zrec) > 0 {
				// A zone map is untrusted input about block contents; any
				// damage degrades this column to "no skipping" (the header-
				// derived map from parseColumn is discarded too, keeping
				// the failure mode uniform) rather than risking a wrong
				// answer. The report entry fails a strict open.
				if reason := attachZones(c, zrec, zcrc); reason != "" {
					rep.add(CorruptionEntry{Table: t.Name, Column: c.Name, Offset: recOff,
						Reason: reason + " (column kept, skipping disabled)"})
					c.Zones = nil
				}
			}
		}
		if opt.DeepVerify {
			if verr := deepVerifyColumn(c); verr != nil {
				rep.add(CorruptionEntry{Table: t.Name, Column: c.Name, Offset: recOff,
					Reason: verr.Error()})
				damaged++
				continue
			}
		}
		t.Columns = append(t.Columns, c)
	}
	// Surviving columns must agree with the catalog row count; ones that
	// do not are as untrustworthy as a failed checksum.
	keep := t.Columns[:0]
	for _, c := range t.Columns {
		if uint64(c.Rows()) != rows {
			rep.add(CorruptionEntry{Table: t.Name, Column: c.Name, Offset: -1,
				Reason: fmt.Sprintf("column has %d rows, catalog says %d", c.Rows(), rows)})
			damaged++
			continue
		}
		keep = append(keep, c)
	}
	t.Columns = keep
	if nc == 0 && rows != 0 {
		rep.add(CorruptionEntry{Table: t.Name, Offset: -1,
			Reason: fmt.Sprintf("catalog says %d rows but table has no columns", rows)})
		return nil, stop
	}
	if damaged > 0 && len(t.Columns) == 0 {
		rep.add(CorruptionEntry{Table: t.Name, Offset: -1,
			Reason: "all columns damaged; table quarantined"})
		return nil, stop
	}
	return t, stop
}

// columnLabel names a column for a report entry when the column may not
// have parsed: its name when available, else its ordinal.
func columnLabel(c *Column, j int) string {
	if c != nil && c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("#%d", j)
}

// recordName best-effort extracts the column name from a (possibly
// damaged) v2 column record for report entries.
func recordName(rec []byte, j int) string {
	if len(rec) >= 4 {
		n := int(binary.LittleEndian.Uint32(rec))
		if n > 0 && n <= 1<<10 && 4+n <= len(rec) {
			return string(rec[4 : 4+n])
		}
	}
	return fmt.Sprintf("#%d", j)
}

// parseColumn parses one column record from r. With exact set (v2), the
// record must be consumed completely — trailing bytes inside a
// checksummed frame mean the frame lied about its contents.
func parseColumn(r *reader, exact bool) (*Column, error) {
	c := &Column{Name: r.str()}
	c.Type = types.Type(r.u8())
	c.Collation = types.Collation(r.u8())
	flags := r.u8()
	if r.err != nil {
		return c, r.err
	}
	if c.Type >= types.NumTypes {
		return c, fmt.Errorf("column %q: invalid type byte %d", c.Name, uint8(c.Type))
	}
	if c.Collation > types.CollateEN {
		return c, fmt.Errorf("column %q: invalid collation byte %d", c.Name, uint8(c.Collation))
	}
	readMetadata(r, &c.Meta)
	data := r.bytes()
	if r.err != nil {
		return c, r.err
	}
	s, err := enc.FromBytes(data)
	if err != nil {
		return c, fmt.Errorf("column %q: %w", c.Name, err)
	}
	c.Data = s
	if flags&flagHasHeap != 0 {
		hb := r.bytes()
		hc := int(r.u64())
		if r.err != nil {
			return c, r.err
		}
		h, err := heap.FromBytes(hb, hc, c.Collation, flags&flagHeapSorted != 0)
		if err != nil {
			return c, fmt.Errorf("column %q: %w", c.Name, err)
		}
		c.Heap = h
	}
	if flags&flagHasDict != 0 {
		n := int(r.u32())
		if r.err == nil && (n < 0 || n > 1<<enc.DictMaxBits) {
			return c, fmt.Errorf("column %q: dictionary size %d out of range", c.Name, n)
		}
		c.Dict = make([]uint64, n)
		for i := range c.Dict {
			c.Dict[i] = r.u64()
		}
	}
	if r.err != nil {
		return c, r.err
	}
	if exact && r.at != len(r.buf) {
		return c, fmt.Errorf("column %q: %d trailing bytes in column record", c.Name, len(r.buf)-r.at)
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	if err := validateDictTokens(c); err != nil {
		return c, fmt.Errorf("column %q: %w", c.Name, err)
	}
	// Zone maps are not part of the v1/v2 record; derive what the encoded
	// stream's own headers prove (DESIGN.md §15) so old extracts can still
	// skip blocks where it is provably safe. A v3 persisted map, when
	// present and valid, replaces this.
	if c.Data.Len() > 0 {
		c.Zones = enc.DeriveZoneMap(c.Data, c.Signed(), zoneSentinel(c), true)
	}
	return c, nil
}

// zoneSentinel returns the NULL pattern a column's raw stream stores:
// the token sentinel for token-valued columns, the type sentinel for
// plain scalars.
func zoneSentinel(c *Column) uint64 {
	if c.Dict != nil || c.Type == types.String {
		return types.NullToken
	}
	return types.NullBits(c.Type)
}

// attachZones validates an untrusted persisted zone record against its
// column and attaches it; a non-empty return describes why it was
// rejected. Validation failure must never panic or mis-skip, only cost
// the pruning opportunity.
func attachZones(c *Column, zrec []byte, zcrc uint32) string {
	if crc32.ChecksumIEEE(zrec) != zcrc {
		return "zone map checksum mismatch"
	}
	zm, err := enc.ZoneMapFromBytes(zrec)
	if err != nil {
		return err.Error()
	}
	if err := zm.Validate(c.Data); err != nil {
		return err.Error()
	}
	c.Zones = zm
	return ""
}

// validateDictTokens checks that every stored token of a dictionary-
// compressed column indexes inside its dictionary (or is the NULL
// sentinel), so Value can never fault on a loaded file. The walk is
// O(payload), not O(rows): constant and affine streams are checked at
// their endpoints, run-length streams per run, and dictionary-encoded
// streams per dictionary entry.
func validateDictTokens(c *Column) error {
	if c.Dict == nil {
		return nil
	}
	s := c.Data
	null := types.NullToken & enc.WidthMask(s.Width())
	n := uint64(len(c.Dict))
	check := func(tok uint64) error {
		if tok != null && tok >= n {
			return fmt.Errorf("dictionary token %d out of range (%d entries)", tok, n)
		}
		return nil
	}
	switch {
	case s.Len() == 0:
		return nil
	case s.Kind() == enc.RunLength:
		for i := 0; i < s.NumRuns(); i++ {
			_, v := s.Run(i)
			if err := check(v); err != nil {
				return err
			}
		}
	case s.Kind() == enc.Dictionary:
		for i := 0; i < s.DictLen(); i++ {
			if err := check(s.DictEntry(i)); err != nil {
				return err
			}
		}
	case s.Bits() == 0 || s.Kind() == enc.Affine:
		// Values advance by a constant step (or not at all), so the
		// extremes are at the endpoints.
		if err := check(s.Get(0)); err != nil {
			return err
		}
		return check(s.Get(s.Len() - 1))
	default:
		// Bit-packed payload: rows are bounded by payload bits, so a full
		// walk is bounded by the record size.
		for i, rows := 0, s.Len(); i < rows; i++ {
			if err := check(s.Get(i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// deepVerifyColumn decodes every value of c, converting any residual
// fault (including a panic in the decode path on a hostile image) into a
// corruption error. When the column carries a zone map it is cross-
// checked against the decoded blocks: every non-NULL value must lie in
// its block's claimed range, and exact-null maps must count NULLs
// correctly — the check behind `tdecheck -deep`.
func deepVerifyColumn(c *Column) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("deep verify: panic decoding values: %v", p)
		}
	}()
	for i, rows := 0, c.Rows(); i < rows; i++ {
		if c.IsNull(i) {
			continue
		}
		if c.Type == types.String {
			_ = c.StringAt(i)
		} else {
			_ = c.Value(i)
		}
	}
	return verifyZones(c)
}

// verifyZones cross-checks c's zone map (if any) against the decoded
// blocks. Entries are conservative envelopes, so the check is
// containment, not equality: a value outside its block's range (or a
// wrong exact NULL count) means a scan consulting this map could skip a
// block that matches — silent wrong answers, the worst corruption class.
func verifyZones(c *Column) error {
	z := c.Zones
	if z == nil {
		return nil
	}
	if err := z.Validate(c.Data); err != nil {
		return fmt.Errorf("deep verify: %w", err)
	}
	w := c.Data.Width()
	sraw := zoneSentinel(c) & enc.WidthMask(w)
	signed := c.Signed()
	for i, rows := 0, c.Rows(); i < rows; i++ {
		e := &z.Entries[i/z.BlockSize]
		raw := c.Data.Get(i)
		if raw == sraw {
			continue
		}
		var x int64
		if signed {
			x = enc.SignExtend(raw, w)
		} else {
			x = int64(raw & enc.WidthMask(w))
		}
		if !e.HasRange {
			return fmt.Errorf("deep verify: zone entry %d claims no range but block has value %d", i/z.BlockSize, x)
		}
		if x < e.Min || x > e.Max {
			return fmt.Errorf("deep verify: value %d at row %d outside zone range [%d, %d]", x, i, e.Min, e.Max)
		}
	}
	if z.NullsKnown {
		for b := range z.Entries {
			e := &z.Entries[b]
			nulls := 0
			for i := b * z.BlockSize; i < b*z.BlockSize+e.Rows; i++ {
				if c.Data.Get(i) == sraw {
					nulls++
				}
			}
			if nulls != e.Nulls {
				return fmt.Errorf("deep verify: zone entry %d claims %d nulls, block has %d", b, e.Nulls, nulls)
			}
		}
	}
	return nil
}

func readMetadata(r *reader, m *enc.Metadata) {
	m.RowCount = int(r.u64())
	flags := r.u16()
	get := func(bit int) bool { return flags&(1<<bit) != 0 }
	m.HasRange = get(0)
	m.RangeExact = get(1)
	m.CardinalityExact = get(2)
	m.NullsKnown = get(3)
	m.HasNulls = get(4)
	m.SortedKnown = get(5)
	m.SortedAsc = get(6)
	m.Dense = get(7)
	m.Unique = get(8)
	m.IsAffine = get(9)
	m.EntriesSorted = get(10)
	m.Min = int64(r.u64())
	m.Max = int64(r.u64())
	m.Cardinality = int(r.u64())
	m.CardinalityUpper = int(r.u64())
	m.AffineBase = int64(r.u64())
	m.AffineDelta = int64(r.u64())
}

// errWriter accumulates the first write error.
type errWriter struct {
	w   io.Writer
	err error
	tmp [8]byte
}

func (ew *errWriter) write(b []byte) {
	if ew.err == nil {
		_, ew.err = ew.w.Write(b)
	}
}

func (ew *errWriter) u8(v uint8) { ew.tmp[0] = v; ew.write(ew.tmp[:1]) }

func (ew *errWriter) u16(v uint16) {
	binary.LittleEndian.PutUint16(ew.tmp[:2], v)
	ew.write(ew.tmp[:2])
}

func (ew *errWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(ew.tmp[:4], v)
	ew.write(ew.tmp[:4])
}

func (ew *errWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(ew.tmp[:8], v)
	ew.write(ew.tmp[:8])
}

func (ew *errWriter) str(s string) {
	ew.u32(uint32(len(s)))
	ew.write([]byte(s))
}

func (ew *errWriter) bytes(b []byte) {
	ew.u32(uint32(len(b)))
	ew.write(b)
}

// reader parses the body with bounds checking.
type reader struct {
	buf []byte
	at  int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.at+n > len(r.buf) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := r.buf[r.at : r.at+n]
	r.at += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string { return string(r.take(int(r.u32()))) }

func (r *reader) bytes() []byte { return r.take(int(r.u32())) }
