package spill

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"tde/internal/corrupt"
	"tde/internal/heap"
	"tde/internal/types"
)

// writeCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzSpillRead (run: go test ./internal/spill -run
// TestWriteFuzzCorpus -write-corpus).
var writeCorpus = flag.Bool("write-corpus", false, "regenerate the FuzzSpillRead seed corpus")

// corpusSpecs is the column mix every seed file exercises: a signed
// scalar, an unsigned scalar with a sentinel, and a string column.
func corpusSpecs() []ColSpec {
	return []ColSpec{
		{Signed: true, Sentinel: types.NullToken},
		{Sentinel: types.NullToken},
		{Str: true, Collation: types.CollateBinary},
	}
}

// buildSeed writes rows through the real Writer and returns the file's
// bytes — a structurally valid spill file to seed the fuzzer with.
func buildSeed(tb testing.TB, rows int) []byte {
	tb.Helper()
	dir := tb.TempDir()
	m := NewManager(nil, dir, nil, nil)
	defer m.Cleanup()
	var stats Stats
	w, err := m.NewWriter(corpusSpecs(), &stats)
	if err != nil {
		tb.Fatal(err)
	}
	h := heap.New(types.CollateBinary)
	heaps := []*heap.Heap{nil, nil, h}
	row := make([]uint64, 3)
	for i := 0; i < rows; i++ {
		row[0] = uint64(int64(i - rows/2))
		row[1] = uint64(i * 3)
		if i%7 == 0 {
			row[1] = types.NullToken
			row[2] = types.NullToken
		} else {
			row[2] = h.Append(fmt.Sprintf("value-%d", i%11))
		}
		if err := w.Append(row, heaps); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(w.Path())
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// seedMutations derives interesting corrupt variants from a valid file.
func seedMutations(valid []byte) [][]byte {
	muts := [][]byte{
		{},                   // empty file
		[]byte("SPCH"),       // bare magic
		valid[:len(valid)/2], // torn write: truncated mid-chunk
	}
	if len(valid) > 20 {
		flip := append([]byte(nil), valid...)
		flip[len(flip)/2] ^= 0x40 // payload bit flip (CRC must catch it)
		muts = append(muts, flip)
		badLen := append([]byte(nil), valid...)
		badLen[5] = 0xff // absurd chunk length
		muts = append(muts, badLen)
	}
	return muts
}

// TestWriteFuzzCorpus materializes the seed corpus as committed files in
// go's "go test fuzz v1" format; a no-op without -write-corpus.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*writeCorpus {
		t.Skip("run with -write-corpus to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSpillRead")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	valid := buildSeed(t, 600) // >2 chunks
	seeds := append([][]byte{valid, buildSeed(t, 3)}, seedMutations(valid)...)
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzSpillRead drives the spill reader over arbitrary bytes: whatever
// the input, Next must terminate with rows, io.EOF, or a typed error —
// corruption wrapping corrupt.Err or I/O failure as *IOError — and
// never panic (the decoder's own panic containment is part of the
// contract).
func FuzzSpillRead(f *testing.F) {
	valid := buildSeed(f, 600)
	f.Add(valid)
	f.Add(buildSeed(f, 3))
	for _, m := range seedMutations(valid) {
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		defer r.Close()
		rows := 0
		for i := 0; i < 1<<16; i++ { // bound: no input this size yields more chunks
			ch, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				var ioe *IOError
				if !errors.Is(err, corrupt.Err) && !errors.As(err, &ioe) {
					t.Fatalf("untyped spill read error: %v", err)
				}
				return
			}
			if ch.Rows <= 0 || ch.Rows > ChunkRows {
				t.Fatalf("chunk row count %d out of range", ch.Rows)
			}
			for _, c := range ch.Cols {
				if len(c.Values) != ch.Rows {
					t.Fatalf("column has %d values for %d rows", len(c.Values), ch.Rows)
				}
			}
			rows += ch.Rows
		}
		t.Fatalf("reader did not terminate after %d rows", rows)
	})
}

// TestFuzzSeedsRoundTrip pins the valid seed's content: the reader must
// decode exactly what the writer stored, including NULLs and strings.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	data := buildSeed(t, 600)
	r := NewReader(bytes.NewReader(data))
	defer r.Close()
	seen := 0
	for {
		ch, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ch.Rows; i++ {
			g := seen + i
			if got, want := ch.Cols[0].Values[i], uint64(int64(g-300)); got != want {
				t.Fatalf("row %d col 0: got %d want %d", g, got, want)
			}
			if g%7 == 0 {
				if ch.Cols[2].Values[i] != types.NullToken {
					t.Fatalf("row %d col 2: expected NULL", g)
				}
			} else if got, want := ch.Cols[2].Heap.Get(ch.Cols[2].Values[i]), fmt.Sprintf("value-%d", g%11); got != want {
				t.Fatalf("row %d col 2: got %q want %q", g, got, want)
			}
		}
		seen += ch.Rows
	}
	if seen != 600 {
		t.Fatalf("decoded %d rows, want 600", seen)
	}
}
