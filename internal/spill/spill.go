// Package spill implements the compressed spill files the execution
// engine writes when an operator's state outgrows its memory budget:
// chunked, CRC-framed, columnar row spools whose value columns are
// enc-compressed streams and whose string columns carry chunk-local
// heaps (the paper's thesis — lightweight encodings make data cheap to
// move — applied to operator state instead of base tables).
//
// All I/O flows through iofault.FS, so torn writes, ENOSPC, read errors
// and bit flips are injectable; every failure maps to a typed error:
// *IOError (matching ErrSpill) for I/O, corrupt.Err for any byte-level
// damage found while decoding, and whatever the disk-budget hook
// returns when a write would exceed QueryOptions.SpillBudget.
//
// File layout (little-endian):
//
//	file  := chunk*
//	chunk := "SPCH" | u32 payloadLen | u32 crc32(payload) | payload
//	payload := u32 rows | u16 cols | col*
//	col(scalar) := 0x00 | u32 streamLen | enc.Stream bytes
//	col(string) := 0x01 | u8 collation | u32 heapCount | u32 heapLen |
//	               heap bytes | u32 streamLen | enc.Stream of tokens
//
// String tokens are chunk-local (re-interned into a per-chunk heap at
// append time), so a chunk decodes standalone: a reader never needs
// state from earlier chunks, and a torn tail loses only the last chunk.
package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tde/internal/corrupt"
	"tde/internal/enc"
	"tde/internal/heap"
	"tde/internal/iofault"
	"tde/internal/types"
)

// Prefix names every spill temp directory, so orphans left by a crashed
// process are recognizable and sweepable.
const Prefix = "tde-spill-"

// ChunkRows is the row capacity of one chunk. It is deliberately smaller
// than the engine's execution block so per-partition write buffers stay
// small when an operator fans out over many partitions.
const ChunkRows = 256

const chunkMagic = "SPCH"

// maxPayload bounds a chunk frame so a corrupt length field cannot make
// the reader allocate gigabytes.
const maxPayload = 64 << 20

// ErrSpill is the sentinel matched (errors.Is) by every spill I/O
// failure; the concrete *IOError carries the operation and path.
var ErrSpill = errors.New("spill: I/O failure")

// IOError is a typed spill I/O failure. It matches both ErrSpill and the
// underlying OS error (so errors.Is(err, syscall.ENOSPC) works).
type IOError struct {
	Op   string // "create", "write", "open", "read", "remove"
	Path string
	Err  error
}

func (e *IOError) Error() string {
	return fmt.Sprintf("spill: %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *IOError) Unwrap() []error { return []error{e.Err, ErrSpill} }

// ColSpec describes one column of a spill file's rows.
type ColSpec struct {
	// Str marks a string column: values are heap tokens, resolved through
	// the caller's heap at append time and re-interned per chunk.
	Str bool
	// Signed selects signed range statistics for the encoder.
	Signed bool
	// Sentinel is the column's NULL bit pattern.
	Sentinel uint64
	// Collation governs the chunk heaps of a string column.
	Collation types.Collation
}

// Stats counts one operator's spill I/O; all fields are updated
// atomically so parallel workers can share one.
type Stats struct {
	Files        int64
	Chunks       int64
	BytesWritten int64
	BytesRead    int64
}

func (s *Stats) addWrite(n int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.Chunks, 1)
	atomic.AddInt64(&s.BytesWritten, n)
}

func (s *Stats) addRead(n int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.BytesRead, n)
}

// Manager owns one query's spill state: a lazily created temp directory,
// the files inside it, and the disk-budget accounting hooks. All methods
// are safe for concurrent use (parallel aggregation workers share one).
type Manager struct {
	fs   iofault.FS
	base string
	// charge/release account spill bytes against the query's disk budget;
	// nil hooks mean unaccounted.
	charge  func(n int) error
	release func(n int)

	mu     sync.Mutex
	dir    string
	files  map[string]int64 // path -> charged bytes
	closed bool
}

// NewManager builds a manager writing under baseDir ("" = os.TempDir())
// through fs (nil = iofault.OS), charging written bytes through the
// hooks.
func NewManager(fs iofault.FS, baseDir string, charge func(n int) error, release func(n int)) *Manager {
	if fs == nil {
		fs = iofault.OS
	}
	if baseDir == "" {
		baseDir = os.TempDir()
	}
	return &Manager{fs: fs, base: baseDir, charge: charge, release: release, files: map[string]int64{}}
}

// Dir returns the query's spill directory, creating it on first use.
func (m *Manager) Dir() (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", &IOError{Op: "create", Path: m.base, Err: errors.New("spill manager closed")}
	}
	if m.dir == "" {
		dir, err := m.fs.MkdirTemp(m.base, Prefix+"*")
		if err != nil {
			return "", &IOError{Op: "create", Path: m.base, Err: err}
		}
		m.dir = dir
	}
	return m.dir, nil
}

// Remove deletes one spill file and returns its bytes to the disk
// budget. Operators call it as soon as a partition or run is consumed,
// so disk usage shrinks while a query degrades — the first rung of the
// ENOSPC ladder.
func (m *Manager) Remove(path string) error {
	m.mu.Lock()
	charged, ok := m.files[path]
	delete(m.files, path)
	m.mu.Unlock()
	if !ok {
		return nil
	}
	if m.release != nil {
		m.release(int(charged))
	}
	if err := m.fs.Remove(path); err != nil {
		return &IOError{Op: "remove", Path: path, Err: err}
	}
	return nil
}

// Cleanup removes every remaining spill file and the directory itself.
// Idempotent; called from the query's Close/cancel/panic paths.
func (m *Manager) Cleanup() {
	m.mu.Lock()
	files := m.files
	dir := m.dir
	m.files = map[string]int64{}
	m.dir = ""
	m.closed = true
	m.mu.Unlock()
	for path, charged := range files {
		if m.release != nil {
			m.release(int(charged))
		}
		_ = m.fs.Remove(path)
	}
	if dir != "" {
		_ = m.fs.Remove(dir)
	}
}

// track records a file's charged size (under mu).
func (m *Manager) track(path string, n int64) {
	m.mu.Lock()
	m.files[path] += n
	m.mu.Unlock()
}

// Writer appends rows to one spill file, buffering ChunkRows at a time
// and writing each buffer as a self-contained compressed chunk.
type Writer struct {
	m     *Manager
	f     iofault.File
	path  string
	specs []ColSpec
	stats *Stats

	rows  int
	total int64
	cols  [][]uint64
	heaps []*heap.Heap
	accs  []*heap.Accelerator
}

// NewWriter creates a new spill file in the manager's directory.
func (m *Manager) NewWriter(specs []ColSpec, stats *Stats) (*Writer, error) {
	dir, err := m.Dir()
	if err != nil {
		return nil, err
	}
	f, err := m.fs.CreateTemp(dir, "part*")
	if err != nil {
		return nil, &IOError{Op: "create", Path: dir, Err: err}
	}
	// Track the file from birth: a writer abandoned before its first
	// flush (failed charge, torn write) must still be swept by Cleanup.
	m.track(f.Name(), 0)
	if stats != nil {
		atomic.AddInt64(&stats.Files, 1)
	}
	w := &Writer{m: m, f: f, path: f.Name(), specs: specs, stats: stats,
		cols: make([][]uint64, len(specs)), heaps: make([]*heap.Heap, len(specs)),
		accs: make([]*heap.Accelerator, len(specs))}
	w.resetChunk()
	return w, nil
}

func (w *Writer) resetChunk() {
	w.rows = 0
	for c, spec := range w.specs {
		w.cols[c] = w.cols[c][:0]
		if spec.Str {
			w.heaps[c] = heap.New(spec.Collation)
			w.accs[c] = heap.NewAccelerator(w.heaps[c], 0)
		}
	}
}

// Path returns the file's path.
func (w *Writer) Path() string { return w.path }

// Rows returns the total rows appended so far (buffered included).
func (w *Writer) Rows() int64 { return w.total + int64(w.rows) }

// Append adds one row. For string columns, row[c] is a token into
// heaps[c] (NullToken passes through); the string content is re-interned
// into the chunk's local heap immediately, so heaps may be per-block
// scratch heaps that do not outlive the call.
func (w *Writer) Append(row []uint64, heaps []*heap.Heap) error {
	for c, spec := range w.specs {
		v := row[c]
		if spec.Str && v != types.NullToken {
			v = w.accs[c].Intern(heaps[c].Get(v))
		}
		w.cols[c] = append(w.cols[c], v)
	}
	w.rows++
	if w.rows >= ChunkRows {
		return w.Flush()
	}
	return nil
}

// Flush writes the buffered rows as one chunk.
func (w *Writer) Flush() error {
	if w.rows == 0 {
		return nil
	}
	payload := w.encodePayload()
	frame := make([]byte, 0, len(payload)+12)
	frame = append(frame, chunkMagic...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if w.m.charge != nil {
		if err := w.m.charge(len(frame)); err != nil {
			return err
		}
	}
	w.m.track(w.path, int64(len(frame)))
	if _, err := w.f.Write(frame); err != nil {
		return &IOError{Op: "write", Path: w.path, Err: err}
	}
	w.stats.addWrite(int64(len(frame)))
	w.total += int64(w.rows)
	w.resetChunk()
	return nil
}

func (w *Writer) encodePayload() []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(w.rows))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w.specs)))
	for c, spec := range w.specs {
		if spec.Str {
			buf = append(buf, 1, byte(spec.Collation))
			hb := w.heaps[c].Bytes()
			buf = binary.LittleEndian.AppendUint32(buf, uint32(w.heaps[c].Len()))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hb)))
			buf = append(buf, hb...)
		} else {
			buf = append(buf, 0)
		}
		sb := encodeStream(w.cols[c], spec)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sb)))
		buf = append(buf, sb...)
	}
	return buf
}

// encodeStream runs the dynamic encoder over one chunk column.
func encodeStream(vals []uint64, spec ColSpec) []byte {
	ew := enc.NewWriter(enc.WriterConfig{
		Signed:         spec.Signed && !spec.Str,
		Sentinel:       spec.Sentinel,
		HasSentinel:    true,
		PreferDict:     spec.Str,
		ConvertOptimal: true,
	})
	ew.Append(vals)
	return ew.Finish().Bytes()
}

// Close flushes and closes the file, which stays on disk for reading.
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return &IOError{Op: "write", Path: w.path, Err: err}
	}
	return nil
}

// Chunk is one decoded chunk of rows.
type Chunk struct {
	Rows int
	Cols []Col
}

// Col is one decoded chunk column: full-width values, plus the chunk
// heap resolving tokens for string columns (nil for scalars).
type Col struct {
	Values []uint64
	Heap   *heap.Heap
}

// Bytes approximates the chunk's decoded in-memory footprint, the unit
// readers charge against the memory budget while merging.
func (ch *Chunk) Bytes() int {
	n := 0
	for i := range ch.Cols {
		n += len(ch.Cols[i].Values) * 8
		if ch.Cols[i].Heap != nil {
			n += ch.Cols[i].Heap.Size()
		}
	}
	return n
}

// Reader decodes a spill file chunk by chunk. Any structural damage —
// bad magic, truncated frame, CRC mismatch, invalid stream or heap —
// surfaces as an error wrapping corrupt.Err, never a panic.
type Reader struct {
	r      io.ReaderAt
	off    int64
	stats  *Stats
	closer io.Closer
	path   string
}

// OpenReader opens a spill file written by a Writer from this manager.
func (m *Manager) OpenReader(path string, stats *Stats) (*Reader, error) {
	f, err := m.fs.Open(path)
	if err != nil {
		return nil, &IOError{Op: "open", Path: path, Err: err}
	}
	return &Reader{r: f, closer: f, path: path, stats: stats}, nil
}

// NewReader decodes spill bytes from any io.ReaderAt; the fuzz harness
// drives it over raw byte slices.
func NewReader(r io.ReaderAt) *Reader {
	return &Reader{r: r}
}

// Close closes the underlying file (the file itself stays on disk; use
// Manager.Remove to delete it and return its budget).
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

func (r *Reader) corruptf(format string, args ...any) error {
	where := r.path
	if where == "" {
		where = "spill"
	}
	return corrupt.Wrap(fmt.Errorf("%s@%d: %s", where, r.off, fmt.Sprintf(format, args...)))
}

// readFull reads exactly len(p) bytes at off. Returns (false, nil) on a
// clean end-of-file with zero bytes, a corruption error on a short tail,
// and an *IOError on a real read failure.
func (r *Reader) readFull(p []byte, off int64) (bool, error) {
	n, err := r.r.ReadAt(p, off)
	r.stats.addRead(int64(n))
	if n == len(p) {
		return true, nil
	}
	if err == nil || errors.Is(err, io.EOF) {
		if n == 0 {
			return false, nil
		}
		return false, r.corruptf("truncated chunk: %d of %d bytes", n, len(p))
	}
	return false, &IOError{Op: "read", Path: r.path, Err: err}
}

// Next returns the next chunk, or (nil, io.EOF) at the end of the file.
func (r *Reader) Next() (ch *Chunk, err error) {
	// The decoders below validate every length and offset, but these are
	// untrusted bytes (a torn write, a flipped bit, a fuzzer): one last
	// containment layer turns any residual decoder panic into a
	// corruption error instead of killing the process.
	defer func() {
		if rec := recover(); rec != nil {
			ch, err = nil, r.corruptf("panic decoding chunk: %v", rec)
		}
	}()
	var hdr [12]byte
	ok, err := r.readFull(hdr[:], r.off)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, io.EOF
	}
	if string(hdr[:4]) != chunkMagic {
		return nil, r.corruptf("bad chunk magic %q", hdr[:4])
	}
	plen := binary.LittleEndian.Uint32(hdr[4:8])
	want := binary.LittleEndian.Uint32(hdr[8:12])
	if plen == 0 || plen > maxPayload {
		return nil, r.corruptf("implausible payload length %d", plen)
	}
	payload := make([]byte, plen)
	ok, err = r.readFull(payload, r.off+12)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, r.corruptf("truncated chunk payload (0 of %d bytes)", plen)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, r.corruptf("chunk checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	ch, err = r.decodePayload(payload)
	if err != nil {
		return nil, err
	}
	r.off += 12 + int64(plen)
	return ch, nil
}

func (r *Reader) decodePayload(p []byte) (*Chunk, error) {
	if len(p) < 6 {
		return nil, r.corruptf("payload too short (%d bytes)", len(p))
	}
	rows := int(binary.LittleEndian.Uint32(p))
	cols := int(binary.LittleEndian.Uint16(p[4:]))
	if rows <= 0 || rows > maxPayload/8 {
		return nil, r.corruptf("implausible row count %d", rows)
	}
	ch := &Chunk{Rows: rows, Cols: make([]Col, cols)}
	at := 6
	take := func(n int, what string) ([]byte, error) {
		if n < 0 || at+n > len(p) {
			return nil, r.corruptf("%s overruns payload (%d bytes claimed at %d of %d)", what, n, at, len(p))
		}
		b := p[at : at+n]
		at += n
		return b, nil
	}
	for c := 0; c < cols; c++ {
		kind, err := take(1, "column kind")
		if err != nil {
			return nil, err
		}
		var hp *heap.Heap
		switch kind[0] {
		case 1:
			hdr, err := take(9, "heap header")
			if err != nil {
				return nil, err
			}
			coll := types.Collation(hdr[0])
			if coll > types.CollateEN {
				return nil, r.corruptf("unknown collation %d", hdr[0])
			}
			count := int(binary.LittleEndian.Uint32(hdr[1:5]))
			hlen := int(binary.LittleEndian.Uint32(hdr[5:9]))
			hb, err := take(hlen, "heap bytes")
			if err != nil {
				return nil, err
			}
			hp, err = heap.FromBytes(append([]byte(nil), hb...), count, coll, false)
			if err != nil {
				return nil, err // already wraps corrupt.Err
			}
		case 0:
		default:
			return nil, r.corruptf("unknown column kind %d", kind[0])
		}
		slenb, err := take(4, "stream length")
		if err != nil {
			return nil, err
		}
		sb, err := take(int(binary.LittleEndian.Uint32(slenb)), "stream bytes")
		if err != nil {
			return nil, err
		}
		stream, err := enc.FromBytes(append([]byte(nil), sb...))
		if err != nil {
			return nil, err // already wraps corrupt.Err
		}
		if stream.Len() != rows {
			return nil, r.corruptf("column %d holds %d values, chunk says %d rows", c, stream.Len(), rows)
		}
		vals := make([]uint64, rows)
		enc.NewReader(stream).Read(0, rows, vals)
		ch.Cols[c] = Col{Values: vals, Heap: hp}
	}
	if at != len(p) {
		return nil, r.corruptf("%d trailing bytes after last column", len(p)-at)
	}
	return ch, nil
}

// Sweep removes orphaned spill directories under dir: entries matching
// the tde-spill-* naming scheme whose modification time is older than
// olderThan (guarding live queries of other processes). It reports how
// many orphans it removed; errors reading the directory are returned,
// per-entry removal errors are ignored (another sweep will retry).
func Sweep(dir string, olderThan time.Duration) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	cutoff := time.Now().Add(-olderThan)
	removed := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), Prefix) {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.RemoveAll(filepath.Join(dir, e.Name())) == nil {
			removed++
		}
	}
	return removed, nil
}
