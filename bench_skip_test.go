package tde

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"tde/internal/plan"
	"tde/internal/tpch"
)

// Zone-skipping benchmarks on TPC-H lineitem sorted by l_shipdate: a
// selective date-range predicate touches a thin band of blocks, so the
// pruner should skip nearly everything while the full scan decodes the
// whole column. Each benchmark runs the same query with skipping forced
// on and forced off; the Skip*/skipping vs /full-scan pairs are guarded
// by BENCH_skip.json.

const benchSkipSF = 0.05 // ~300k lineitem rows, ~300 blocks

var (
	benchSkipOnce sync.Once
	benchSkipDB   *Database
	benchSkipErr  error
)

func skipBenchDB(b *testing.B) *Database {
	benchSkipOnce.Do(func() {
		var li bytes.Buffer
		if err := tpch.New(benchSkipSF, 42).WriteLineitem(&li); err != nil {
			benchSkipErr = err
			return
		}
		// The generator emits rows in order-key order; re-sort by
		// l_shipdate (field 10, ISO dates, so byte order is date order)
		// to give the zone maps tight per-block ranges.
		rows := bytes.Split(bytes.TrimRight(li.Bytes(), "\n"), []byte("\n"))
		shipdate := func(row []byte) []byte {
			fields := bytes.SplitN(row, []byte("|"), 12)
			return fields[10]
		}
		sort.SliceStable(rows, func(i, j int) bool {
			return bytes.Compare(shipdate(rows[i]), shipdate(rows[j])) < 0
		})
		sorted := append(bytes.Join(rows, []byte("\n")), '\n')

		db := New()
		opt := DefaultImportOptions()
		opt.Schema = benchSkipSchema()
		opt.HeaderSet, opt.HasHeader = true, false
		if err := db.ImportCSV("lineitem", sorted, opt); err != nil {
			benchSkipErr = err
			return
		}
		benchSkipDB = db
	})
	if benchSkipErr != nil {
		b.Fatal(benchSkipErr)
	}
	return benchSkipDB
}

func benchSkipSchema() []string {
	kinds := []string{"int", "int", "int", "int", "int", "real", "real", "real",
		"str", "str", "date", "date", "date", "str", "str", "str"}
	out := make([]string, len(tpch.LineitemSchema))
	for i, n := range tpch.LineitemSchema {
		out[i] = n + ":" + kinds[i]
	}
	return out
}

func benchSkipQuery(b *testing.B, sql string) {
	db := skipBenchDB(b)
	// The pairing only measures something if pruning actually engages on
	// this query; a plan change that silently stops skipping would turn
	// the benchmark into two identical full scans.
	probe, err := db.QueryWithOptions(sql, plan.Options{
		ParallelWorkers: -1, NoDictPlan: true, NoIndexPlan: true,
		ZoneSkip: plan.ForceZoneSkip,
	})
	if err != nil {
		b.Fatal(err)
	}
	skipped := false
	for _, op := range probe.Stats().Operators {
		if op.BlocksSkipped > 0 {
			skipped = true
		}
	}
	if !skipped {
		b.Fatalf("query %q skipped no blocks; the skipping arm is not exercising pruning", sql)
	}
	for _, arm := range []struct {
		name string
		zs   int
	}{
		{"skipping", plan.ForceZoneSkip},
		{"full-scan", plan.ZoneSkipOff},
	} {
		b.Run(arm.name, func(b *testing.B) {
			opt := plan.Options{
				ParallelWorkers: -1, NoDictPlan: true, NoIndexPlan: true,
				ZoneSkip: arm.zs,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryWithOptions(sql, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// date-range: a two-month band of a seven-year span — ~3% of blocks
// survive pruning on the shipdate-sorted table.
func BenchmarkSkipDateRange(b *testing.B) {
	benchSkipQuery(b, "SELECT COUNT(*), SUM(l_quantity) FROM lineitem "+
		"WHERE l_shipdate >= DATE '1997-03-01' AND l_shipdate < DATE '1997-05-01'")
}

// point-month: an even thinner band, aggregating a real column so the
// surviving blocks still do per-row work.
func BenchmarkSkipNarrowRange(b *testing.B) {
	benchSkipQuery(b, "SELECT SUM(l_extendedprice) FROM lineitem "+
		"WHERE l_shipdate >= DATE '1995-06-01' AND l_shipdate < DATE '1995-06-15'")
}
