// tracecheck validates a Chrome trace file (the JSON Object Format with
// a traceEvents array that chrome://tracing and Perfetto load) emitted
// by tdequery/tdebench -trace or Result.WriteTrace:
//
//	go run ./scripts/tracecheck query.trace.json
//
// It checks the structural invariants the viewers rely on — every event
// has a phase, "X" complete events carry non-negative ts/dur plus
// pid/tid, "M" metadata events name their thread — and the engine's own
// contract: at least one operator span, unique tids (one per plan
// operator ID), and a thread_name record for every span's tid. Exit 0
// on a loadable trace, 1 with a diagnostic otherwise.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    *float64       `json:"ts"`
	Dur   *float64       `json:"dur"`
	PID   *int           `json:"pid"`
	TID   *int           `json:"tid"`
	Args  map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatalf("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		fatalf("not valid JSON: %v", err)
	}
	if tf.TraceEvents == nil {
		fatalf("no traceEvents array")
	}

	named := map[int]bool{}   // tids with a thread_name metadata record
	spanTID := map[int]bool{} // tids carrying an operator span
	spans := 0
	for i, ev := range tf.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.TS == nil || ev.Dur == nil {
				fatalf("event %d: complete event missing ts/dur", i)
			}
			if *ev.TS < 0 || *ev.Dur < 0 {
				fatalf("event %d: negative ts (%g) or dur (%g)", i, *ev.TS, *ev.Dur)
			}
			if ev.PID == nil || ev.TID == nil {
				fatalf("event %d: complete event missing pid/tid", i)
			}
			if spanTID[*ev.TID] {
				fatalf("event %d: duplicate operator span on tid %d", i, *ev.TID)
			}
			spanTID[*ev.TID] = true
			spans++
		case "M":
			if ev.Name != "thread_name" {
				continue
			}
			if ev.TID == nil {
				fatalf("event %d: thread_name without tid", i)
			}
			if _, ok := ev.Args["name"].(string); !ok {
				fatalf("event %d: thread_name without args.name", i)
			}
			named[*ev.TID] = true
		case "":
			fatalf("event %d: missing phase", i)
		}
	}
	if spans == 0 {
		fatalf("no operator spans (phase X events)")
	}
	for tid := range spanTID {
		if !named[tid] {
			fatalf("operator span on tid %d has no thread_name record", tid)
		}
	}
	fmt.Printf("tracecheck: ok — %d operator spans, %d events\n", spans, len(tf.TraceEvents))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
