// servesmoke is the process-level smoke test for tdeserve: it builds the
// server binary, serves a small generated extract, runs 3 concurrent
// query clients against it, then sends SIGTERM and requires a graceful
// drain and a clean (code 0) exit.
//
//	go run ./scripts/servesmoke
package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tde"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// A small extract to serve.
	db := tde.New()
	var csv strings.Builder
	csv.WriteString("status,amount,when\n")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&csv, "s%d,%d,2014-0%d-0%d\n", i%7, i%101, 1+i%9, 1+i%9)
	}
	if err := db.ImportCSV("orders", []byte(csv.String()), tde.DefaultImportOptions()); err != nil {
		return err
	}
	dbPath := filepath.Join(dir, "smoke.tde")
	if err := db.Save(dbPath); err != nil {
		return err
	}
	db.Close()

	bin := filepath.Join(dir, "tdeserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/tdeserve").CombinedOutput(); err != nil {
		return fmt.Errorf("building tdeserve: %v\n%s", err, out)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	var stderr bytes.Buffer
	srv := exec.Command(bin, "-db", dbPath, "-addr", addr,
		"-max-concurrent", "2", "-cache", "16M", "-mem", "256M",
		"-drain-timeout", "5s")
	srv.Stderr = &stderr
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Process.Kill()

	base := "http://" + addr
	if err := waitHealthy(base, 15*time.Second); err != nil {
		return fmt.Errorf("%v\nserver stderr:\n%s", err, stderr.String())
	}

	// 3 concurrent clients, ~1.5s of sustained queries.
	var ok, bad atomic.Int64
	stop := time.Now().Add(1500 * time.Millisecond)
	var wg sync.WaitGroup
	queries := []string{
		`{"sql":"SELECT status, SUM(amount) FROM orders GROUP BY status"}`,
		`{"sql":"SELECT COUNT(*) FROM orders WHERE amount < 50"}`,
		`{"sql":"SELECT status, COUNT(*) FROM orders GROUP BY status ORDER BY status"}`,
	}
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				resp, err := http.Post(base+"/query", "application/json",
					strings.NewReader(queries[(c+i)%len(queries)]))
				if err != nil {
					bad.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					ok.Add(1)
				} else {
					bad.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if ok.Load() == 0 {
		return fmt.Errorf("no query succeeded (%d failures)\nserver stderr:\n%s", bad.Load(), stderr.String())
	}
	if bad.Load() > 0 {
		return fmt.Errorf("%d queries failed against an idle-enough server\nserver stderr:\n%s", bad.Load(), stderr.String())
	}

	// Graceful drain on SIGTERM: clean exit, drained marker in stderr.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("server exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server did not exit within 30s of SIGTERM\nstderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained") {
		return fmt.Errorf("no drain marker in server output:\n%s", stderr.String())
	}
	fmt.Printf("servesmoke: %d queries ok across 3 clients; graceful drain confirmed\n", ok.Load())
	return nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server never became healthy at %s", base)
}
