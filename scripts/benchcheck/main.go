// benchcheck guards the parallel-execution benchmarks against
// regression. It reads `go test -bench` output on stdin, extracts ns/op
// per benchmark, and compares against a committed baseline:
//
//	go test -run '^$' -bench 'BenchmarkParallel' . | go run ./scripts/benchcheck -baseline BENCH_parallel.json
//
// A benchmark slower than threshold x its baseline fails the check.
// -update rewrites the baseline from the current run instead (do this on
// the machine that owns the baseline; ns/op is machine-relative, which
// is why the threshold is a loose 2x — the guard catches accidental
// serialization or quadratic blowups, not minor jitter).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

type baseline struct {
	Note       string             `json:"note"`
	Threshold  float64            `json:"threshold"`
	Benchmarks map[string]float64 `json:"benchmarks"` // name -> ns/op
	// Metrics records custom b.ReportMetric values per benchmark (e.g.
	// qps, p50_ms, p99_ms from the serving benchmark). Informational
	// only: printed alongside the run for trend-watching, never a
	// pass/fail criterion — only ns/op is guarded.
	Metrics map[string]map[string]float64 `json:"metrics,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+)\s+\d+\s+([0-9.]+) ns/op`)

// metricPair matches trailing custom metrics like "812.4 qps".
var metricPair = regexp.MustCompile(`([0-9.]+) ([A-Za-z_][\w/]*)`)

// parseMetrics extracts custom b.ReportMetric pairs from the part of a
// bench line after "ns/op".
func parseMetrics(line string) map[string]float64 {
	i := len(line)
	if j := indexNsOp(line); j >= 0 {
		i = j
	}
	out := map[string]float64{}
	for _, m := range metricPair.FindAllStringSubmatch(line[i:], -1) {
		if v, err := strconv.ParseFloat(m[1], 64); err == nil {
			out[m[2]] = v
		}
	}
	return out
}

func indexNsOp(line string) int {
	const tag = " ns/op"
	for i := 0; i+len(tag) <= len(line); i++ {
		if line[i:i+len(tag)] == tag {
			return i + len(tag)
		}
	}
	return -1
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_parallel.json", "baseline file")
	update := flag.Bool("update", false, "rewrite the baseline from this run")
	maxRatio := flag.Float64("maxratio", 0, "override the baseline's threshold (e.g. 1.03 to bound instrumentation overhead at 3%)")
	flag.Parse()

	current := map[string]float64{}
	currentMetrics := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := stripProcSuffix(m[1])
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		current[name] = ns
		if mx := parseMetrics(line); len(mx) > 0 {
			currentMetrics[name] = mx
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("reading bench output: %v", err)
	}
	if len(current) == 0 {
		fatalf("no benchmark results on stdin")
	}

	if *update {
		b := baseline{
			Note: "ns/op baselines for the guarded benchmarks; " +
				"machine-relative, regenerate with `make bench-baseline`",
			Threshold:  2.0,
			Benchmarks: current,
		}
		if len(currentMetrics) > 0 {
			b.Metrics = currentMetrics
		}
		buf, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "benchcheck: wrote %d baselines to %s\n", len(current), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("no baseline (%v); run with -update to create one", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parsing %s: %v", *baselinePath, err)
	}
	if base.Threshold <= 1 {
		base.Threshold = 2.0
	}
	if *maxRatio > 0 {
		base.Threshold = *maxRatio
	}

	var names []string
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := current[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: MISSING %s (in baseline, not in run)\n", name)
			failed++
			continue
		}
		ratio := got / want
		status := "ok"
		if ratio > base.Threshold {
			status = "REGRESSION"
			failed++
		}
		fmt.Fprintf(os.Stderr, "benchcheck: %-40s %12.0f ns/op  baseline %12.0f  ratio %.2fx  %s\n",
			name, got, want, ratio, status)
	}
	// Custom metrics (qps, p50_ms, ...) are reported for trend-watching
	// but never gate the check: they are machine- and load-relative.
	var mnames []string
	for n := range currentMetrics {
		mnames = append(mnames, n)
	}
	sort.Strings(mnames)
	for _, name := range mnames {
		var units []string
		for u := range currentMetrics[name] {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			got := currentMetrics[name][u]
			if want, ok := base.Metrics[name][u]; ok {
				fmt.Fprintf(os.Stderr, "benchcheck: %-40s %12.2f %-8s baseline %12.2f  (info only)\n",
					name, got, u, want)
			} else {
				fmt.Fprintf(os.Stderr, "benchcheck: %-40s %12.2f %-8s (info only)\n", name, got, u)
			}
		}
	}
	if failed > 0 {
		fatalf("%d benchmark(s) regressed past %.1fx or went missing", failed, base.Threshold)
	}
	fmt.Fprintf(os.Stderr, "benchcheck: %d benchmarks within %.1fx of baseline\n", len(names), base.Threshold)
}

// stripProcSuffix removes the -GOMAXPROCS suffix go test appends.
func stripProcSuffix(name string) string {
	for i := len(name) - 1; i > 0; i-- {
		c := name[i]
		if c == '-' {
			return name[:i]
		}
		if c < '0' || c > '9' {
			break
		}
	}
	return name
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
