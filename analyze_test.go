package tde

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the EXPLAIN ANALYZE golden files from this run")

// twoJoinSpillDB builds a fact table with two independent join keys and
// two dimension tables, so one query can carry two hash joins whose
// build sides both overflow a small memory budget.
func twoJoinSpillDB(t testing.TB) *Database {
	t.Helper()
	db := New()
	var fact strings.Builder
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&fact, "%d,%d,%d.%02d\n", i%6000, i%5000, i%97, i%100)
	}
	opt := DefaultImportOptions()
	opt.Schema = []string{"k1:int", "k2:int", "v:real"}
	opt.HeaderSet, opt.HasHeader = true, false
	if err := db.ImportCSV("f", []byte(fact.String()), opt); err != nil {
		t.Fatal(err)
	}
	var d1 strings.Builder
	for i := 0; i < 12000; i++ {
		fmt.Fprintf(&d1, "%d,one-%d\n", i, i%700)
	}
	opt = DefaultImportOptions()
	opt.Schema = []string{"d1k:int", "d1v:str"}
	opt.HeaderSet, opt.HasHeader = true, false
	if err := db.ImportCSV("d1", []byte(d1.String()), opt); err != nil {
		t.Fatal(err)
	}
	var d2 strings.Builder
	for i := 0; i < 10000; i++ {
		fmt.Fprintf(&d2, "%d,two-%d\n", i, i%500)
	}
	opt = DefaultImportOptions()
	opt.Schema = []string{"d2k:int", "d2v:str"}
	opt.HeaderSet, opt.HasHeader = true, false
	if err := db.ImportCSV("d2", []byte(d2.String()), opt); err != nil {
		t.Fatal(err)
	}
	return db
}

const twoJoinSpillSQL = "SELECT d1v, COUNT(*), SUM(v) FROM f " +
	"JOIN d1 ON k1 = d1k JOIN d2 ON k2 = d2k GROUP BY d1v"

// TestTwoJoinSpillStatsDistinct is the regression test for the operator
// stats keying bug: spill counters used to be registered under the
// operator's *name*, so two hash joins in one plan merged into a single
// "HashJoin" record and the per-join spill volumes were unrecoverable.
// With plan-assigned operator IDs each join must report its own spill.
func TestTwoJoinSpillStatsDistinct(t *testing.T) {
	db := twoJoinSpillDB(t)
	res, err := db.QueryContext(context.Background(), twoJoinSpillSQL, QueryOptions{
		MemoryBudget: 96 << 10,
		SpillBudget:  1 << 30,
		SpillDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var joins []OperatorStats
	for _, s := range res.Stats().Operators {
		if s.Kind == "HashJoin" {
			joins = append(joins, s)
		}
	}
	if len(joins) != 2 {
		t.Fatalf("want 2 HashJoin operator records, got %d: %+v", len(joins), joins)
	}
	if joins[0].ID == joins[1].ID {
		t.Fatalf("the two joins share operator ID %d", joins[0].ID)
	}
	for _, j := range joins {
		if j.Spill == nil || j.Spill.Spills == 0 {
			t.Fatalf("join #%d did not record its own spill: %+v", j.ID, j)
		}
		if j.Spill.BytesWritten == 0 || j.Spill.BytesRead == 0 {
			t.Fatalf("join #%d spilled without byte counters: %+v", j.ID, j.Spill)
		}
		if j.RowsOut == 0 || j.OpenNanos+j.NextNanos == 0 {
			t.Fatalf("join #%d missing runtime actuals: %+v", j.ID, j)
		}
		if j.Routine != "grace" {
			t.Fatalf("join #%d spilled but reports routine %q", j.ID, j.Routine)
		}
	}
	// The rendered tree must show each join's spill on its own line.
	rendered := res.ExplainAnalyze()
	for _, j := range joins {
		line := regexp.MustCompile(fmt.Sprintf(`#%d HashJoin \[grace\].*spill\(`, j.ID))
		if !line.MatchString(rendered) {
			t.Fatalf("EXPLAIN ANALYZE lacks join #%d's spill annotation:\n%s", j.ID, rendered)
		}
	}
	// And the plan's spill summary must carry both IDs, not one merged key.
	for _, j := range joins {
		if !strings.Contains(res.Plan, fmt.Sprintf("#%d HashJoin", j.ID)) {
			t.Fatalf("spill summary lost join #%d: %s", j.ID, res.Plan)
		}
	}
}

// TestLimitStopsUpstreamUnderExchange pins the early-termination
// contract: a LIMIT above an Exchange must stop the producer after the
// bounded channel pipeline fills, not drain the whole scan. The scan's
// BlocksOut counter is the number of successful Next calls the producer
// issued against it.
func TestLimitStopsUpstreamUnderExchange(t *testing.T) {
	db := New()
	var rows strings.Builder
	for i := 0; i < 200000; i++ {
		fmt.Fprintf(&rows, "%d,%d\n", i, i%1000)
	}
	opt := DefaultImportOptions()
	opt.Schema = []string{"a:int", "b:int"}
	opt.HeaderSet, opt.HasHeader = true, false
	if err := db.ImportCSV("big", []byte(rows.String()), opt); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	res, err := db.QueryContext(context.Background(),
		"SELECT a, b FROM big WHERE b >= 0 LIMIT 5",
		QueryOptions{Plan: planWorkers(workers)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(res.Rows))
	}
	var scan, exchange *OperatorStats
	for i, s := range res.Stats().Operators {
		switch s.Kind {
		case "Scan":
			scan = &res.Stats().Operators[i]
		case "Exchange":
			exchange = &res.Stats().Operators[i]
		}
	}
	if scan == nil || exchange == nil {
		t.Fatalf("plan lacks Scan/Exchange: %s", res.Plan)
	}
	// 200k rows = ~196 blocks. The producer may legitimately run ahead of
	// the limit by the pipeline's buffering: the in and out channels hold
	// 2*workers blocks each and every worker can hold one in flight. Zone
	// skipping advances the cursor without a Next call, so total progress
	// is produced plus skipped blocks — measuring BlocksOut alone would
	// let a skipped-to-the-end scan masquerade as an early stop.
	progress := scan.BlocksOut + scan.BlocksSkipped
	maxAhead := int64(5*workers + 10)
	if progress > maxAhead {
		t.Fatalf("LIMIT 5 did not stop the scan: %d blocks advanced (%d read + %d skipped, bound %d)",
			progress, scan.BlocksOut, scan.BlocksSkipped, maxAhead)
	}
	if scan.BlocksOut == 0 {
		t.Fatal("scan reported no blocks at all")
	}
}

// TestStatsExactUnderParallelWorkers runs a parallel plan repeatedly and
// demands exact counters: the snapshot is taken after the exchange's
// goroutines have quiesced, so no worker's contribution may be missing.
// Run with -race to make torn counter updates fail loudly.
func TestStatsExactUnderParallelWorkers(t *testing.T) {
	db := spillTestDB(t)
	const rows = 20000
	for round := 0; round < 5; round++ {
		res, err := db.QueryContext(context.Background(),
			"SELECT k, v FROM t WHERE k >= 0",
			QueryOptions{Plan: planWorkers(8)})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != rows {
			t.Fatalf("round %d: want %d rows, got %d", round, rows, len(res.Rows))
		}
		var scan, exchange *OperatorStats
		for i, s := range res.Stats().Operators {
			switch s.Kind {
			case "Scan":
				scan = &res.Stats().Operators[i]
			case "Exchange":
				exchange = &res.Stats().Operators[i]
			}
		}
		if scan == nil || exchange == nil {
			t.Fatalf("round %d: plan lacks Scan/Exchange: %s", round, res.Plan)
		}
		if scan.RowsOut != rows {
			t.Fatalf("round %d: scan counted %d rows, want exactly %d", round, scan.RowsOut, rows)
		}
		if exchange.RowsOut != rows {
			t.Fatalf("round %d: exchange emitted %d rows, want exactly %d (snapshot raced a worker?)",
				round, exchange.RowsOut, rows)
		}
		if exchange.RowsIn != rows {
			t.Fatalf("round %d: exchange rows_in %d, want %d", round, exchange.RowsIn, rows)
		}
	}
}

// redactCounters strips the run-dependent numbers (times, byte volumes,
// row/block/spill counts) from an EXPLAIN ANALYZE rendering, leaving the
// stable skeleton: operator IDs, kinds, labels, routines, tree shape and
// which operators spilled.
func redactCounters(s string) string {
	for _, r := range []struct{ re, repl string }{
		{`rows=\d+`, "rows=_"},
		{`blocks=\d+`, "blocks=_"},
		{`time=[0-9.]+(µs|ms|s)`, "time=_"},
		{`bytes=[0-9.]+(B|KB|MB)`, "bytes=_"},
		{`spills=\d+`, "spills=_"},
		{`parts=\d+`, "parts=_"},
		{`depth=\d+`, "depth=_"},
		{`wrote=[0-9.]+(B|KB|MB)`, "wrote=_"},
		{`read=[0-9.]+(B|KB|MB)`, "read=_"},
		{`memory_peak=[0-9.]+(B|KB|MB)`, "memory_peak=_"},
		{`spill_peak=[0-9.]+(B|KB|MB)`, "spill_peak=_"},
	} {
		s = regexp.MustCompile(r.re).ReplaceAllString(s, r.repl)
	}
	return s
}

// TestExplainAnalyzeGolden pins the rendered output shape — stable
// plan-order IDs, deterministic operator ordering, routine annotations —
// for a serial, a parallel and a spilling plan. Counters are redacted;
// regenerate with `go test -run Golden -update-golden .`.
func TestExplainAnalyzeGolden(t *testing.T) {
	db := spillTestDB(t)
	cases := []struct {
		name string
		sql  string
		opt  QueryOptions
	}{
		{
			name: "serial",
			sql:  "SELECT dval, COUNT(*), SUM(v) FROM t JOIN d ON k = dkey GROUP BY dval ORDER BY dval",
			opt:  QueryOptions{Plan: planWorkers(-1)},
		},
		{
			name: "parallel",
			sql:  "SELECT k, v FROM t WHERE k >= 1000",
			opt:  QueryOptions{Plan: planWorkers(4)},
		},
		{
			name: "spilling",
			sql:  "SELECT dval, COUNT(*), SUM(v) FROM t JOIN d ON k = dkey GROUP BY dval",
			opt: QueryOptions{
				MemoryBudget: 96 << 10,
				SpillBudget:  1 << 30,
				Plan:         planWorkers(-1),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.opt.SpillBudget > 0 {
				tc.opt.SpillDir = t.TempDir()
			}
			res, err := db.QueryContext(context.Background(), tc.sql, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			got := redactCounters(res.ExplainAnalyze())
			path := filepath.Join("testdata", "analyze", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-golden)", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN ANALYZE shape changed.\n--- want\n%s--- got\n%s", want, got)
			}
		})
	}
}

// TestStatsJSONRoundTrip: Result.Stats() is the machine-readable form;
// it must survive a JSON round trip with IDs, kinds and counters intact.
func TestStatsJSONRoundTrip(t *testing.T) {
	db := spillTestDB(t)
	res, err := db.QueryContext(context.Background(),
		"SELECT dval, COUNT(*) FROM t JOIN d ON k = dkey GROUP BY dval", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stats := res.Stats()
	if len(stats.Operators) == 0 {
		t.Fatal("no operator stats")
	}
	buf, err := json.Marshal(stats)
	if err != nil {
		t.Fatal(err)
	}
	var back QueryStats
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Operators) != len(stats.Operators) {
		t.Fatalf("round trip lost operators: %d != %d", len(back.Operators), len(stats.Operators))
	}
	for i, s := range stats.Operators {
		b := back.Operators[i]
		if b.ID != s.ID || b.Kind != s.Kind || b.RowsOut != s.RowsOut || b.NextNanos != s.NextNanos {
			t.Fatalf("operator %d mutated in round trip:\n%+v\n%+v", i, s, b)
		}
		if s.ID != i+1 {
			t.Fatalf("operator IDs are not dense plan-order: index %d has ID %d", i, s.ID)
		}
	}
}

// TestWriteTraceShape validates the Chrome trace export: one complete
// event and one thread_name metadata record per operator, on distinct
// tids equal to the operator IDs.
func TestWriteTraceShape(t *testing.T) {
	db := spillTestDB(t)
	res, err := db.QueryContext(context.Background(),
		"SELECT dval, COUNT(*) FROM t JOIN d ON k = dkey GROUP BY dval", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	ops := len(res.Stats().Operators)
	spans := map[int]bool{}
	named := map[int]bool{}
	for _, ev := range tf.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.TS < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
			if spans[ev.TID] {
				t.Fatalf("duplicate span for tid %d", ev.TID)
			}
			spans[ev.TID] = true
			if _, ok := ev.Args["rows_out"]; !ok {
				t.Fatalf("span missing rows_out args: %+v", ev)
			}
		case "M":
			named[ev.TID] = true
		}
	}
	if len(spans) != ops {
		t.Fatalf("want %d operator spans, got %d", ops, len(spans))
	}
	for tid := range spans {
		if !named[tid] {
			t.Fatalf("tid %d has no thread_name record", tid)
		}
	}
}
