package tde

import (
	"context"
	"sync"
	"time"
)

// This file is the background auto-compaction runner: a goroutine that
// watches the write overlay's size (delta row slots, approximate bytes,
// dead rows pending GC) and folds it back into compressed base extents
// off the writer path. Commits nudge it; a ticker catches workloads that
// go idle between nudges. When writers outrun the merger the overlay is
// still bounded: past a hard multiple of the trigger thresholds,
// admission (BeginContext) blocks until a merge brings the overlay back
// under — graceful degradation to the old single-writer behavior rather
// than unbounded memory.

// AutoCompactOptions tune EnableAutoCompact. Zero values take defaults;
// a threshold set negative is disabled.
type AutoCompactOptions struct {
	// MaxDeltaRows triggers a merge when the overlay holds at least this
	// many row slots (insertions + base deletions) across tables.
	// Default 100_000.
	MaxDeltaRows int
	// MaxDeltaBytes triggers on the overlay's approximate heap footprint.
	// Default 64 MiB.
	MaxDeltaBytes int64
	// MaxDeadRows triggers on dead delta rows whose values epoch GC has
	// not reclaimed (merge debt that GC alone cannot free, because slots
	// survive until compaction). Default 10_000.
	MaxDeadRows int
	// Interval is the idle re-check period (commits nudge the runner
	// immediately; the ticker catches quiet databases). Default 1s.
	Interval time.Duration
	// HardFactor caps the overlay at HardFactor × the trigger thresholds:
	// beyond it, BeginContext blocks until a merge completes. Default 4.
	HardFactor int
	// MergeTimeout bounds one merge attempt, including its writer drain —
	// an open transaction that never finishes must not hold the runner
	// (and admission) forever. Default 30s.
	MergeTimeout time.Duration
}

func (o *AutoCompactOptions) fill() {
	if o.MaxDeltaRows == 0 {
		o.MaxDeltaRows = 100_000
	}
	if o.MaxDeltaBytes == 0 {
		o.MaxDeltaBytes = 64 << 20
	}
	if o.MaxDeadRows == 0 {
		o.MaxDeadRows = 10_000
	}
	if o.Interval == 0 {
		o.Interval = time.Second
	}
	if o.HardFactor <= 0 {
		o.HardFactor = 4
	}
	if o.MergeTimeout == 0 {
		o.MergeTimeout = 30 * time.Second
	}
}

// autoCompactor is the runner's state. The goroutine owns all merge
// activity; the mutex only guards the externally read counters.
type autoCompactor struct {
	opt   AutoCompactOptions
	nudge chan struct{}
	stop  chan struct{}
	done  chan struct{}

	mu        sync.Mutex
	runs      int
	gcRuns    int
	reclaimed int
	lastErr   error
}

// EnableAutoCompact starts background compaction with the given options.
// It is a no-op if already enabled (options are not rebound); call
// DisableAutoCompact first to re-tune. Close disables it.
func (db *Database) EnableAutoCompact(opt AutoCompactOptions) error {
	if db.salvaged != nil {
		return ErrReadOnly
	}
	opt.fill()
	ac := &autoCompactor{
		opt:   opt,
		nudge: make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	db.wmu.Lock()
	if db.closed {
		db.wmu.Unlock()
		return ErrClosed
	}
	if db.compactor != nil {
		db.wmu.Unlock()
		return nil
	}
	db.compactor = ac
	db.wmu.Unlock()
	go db.compactLoop(ac)
	return nil
}

// DisableAutoCompact stops the background runner and waits for any merge
// in progress to finish. No-op when not enabled.
func (db *Database) DisableAutoCompact() {
	db.wmu.Lock()
	ac := db.compactor
	db.compactor = nil
	db.wmu.Unlock()
	if ac == nil {
		return
	}
	close(ac.stop)
	<-ac.done
}

// nudgeCompactor pokes the runner after a commit; non-blocking (a full
// nudge channel means a wake-up is already pending).
func (db *Database) nudgeCompactor() {
	db.wmu.Lock()
	ac := db.compactor
	db.wmu.Unlock()
	if ac == nil {
		return
	}
	select {
	case ac.nudge <- struct{}{}:
	default:
	}
}

// overCapLocked is the admission backpressure check: true when the
// overlay exceeds the hard cap and Begin must wait for the merger.
// Caller holds wmu.
func (db *Database) overCapLocked() bool {
	ac := db.compactor
	if ac == nil {
		return false
	}
	rows, bytes := db.dstore.SizeHint()
	f := ac.opt.HardFactor
	return rows >= ac.opt.MaxDeltaRows*f || bytes >= ac.opt.MaxDeltaBytes*int64(f)
}

// overThreshold reports whether any merge trigger fires.
func (ac *autoCompactor) overThreshold(db *Database) bool {
	rows, bytes := db.dstore.SizeHint()
	return rows >= ac.opt.MaxDeltaRows ||
		bytes >= ac.opt.MaxDeltaBytes ||
		db.dstore.DeadRows() >= ac.opt.MaxDeadRows
}

// compactLoop is the runner goroutine: GC every wake-up (cheap, frees
// dead rows' values as pins retire), merge when a threshold trips.
func (db *Database) compactLoop(ac *autoCompactor) {
	defer close(ac.done)
	ticker := time.NewTicker(ac.opt.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ac.stop:
			return
		case <-ac.nudge:
		case <-ticker.C:
		}
		if n := db.dstore.GC(); n > 0 {
			ac.mu.Lock()
			ac.gcRuns++
			ac.reclaimed += n
			ac.mu.Unlock()
		}
		if !ac.overThreshold(db) {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), ac.opt.MergeTimeout)
		err := db.CompactContext(ctx, QueryOptions{})
		cancel()
		ac.mu.Lock()
		ac.runs++
		ac.lastErr = err
		ac.mu.Unlock()
		// Whatever happened, admission may have been waiting on the
		// overlay shrinking (or on quiesce ending) — wake it.
		db.wmu.Lock()
		db.wakeAdmissionLocked()
		db.wmu.Unlock()
		if err != nil {
			// A failed merge (timeout draining a long transaction, a
			// poisoned writer) must not spin the runner hot; the ticker
			// retries after a full interval.
			select {
			case <-ac.nudge:
			default:
			}
		}
	}
}

// AutoCompactStats reports the background runner's activity.
type AutoCompactStats struct {
	// Enabled reports whether a runner is active.
	Enabled bool
	// Runs counts merge attempts; GCRuns counts wake-ups that reclaimed
	// dead rows, ReclaimedRows their total.
	Runs, GCRuns, ReclaimedRows int
	// LastErr is the most recent merge attempt's error ("" if it
	// succeeded).
	LastErr string
}

// AutoCompactStats returns the background compaction counters.
func (db *Database) AutoCompactStats() AutoCompactStats {
	db.wmu.Lock()
	ac := db.compactor
	db.wmu.Unlock()
	if ac == nil {
		return AutoCompactStats{}
	}
	ac.mu.Lock()
	defer ac.mu.Unlock()
	st := AutoCompactStats{
		Enabled:       true,
		Runs:          ac.runs,
		GCRuns:        ac.gcRuns,
		ReclaimedRows: ac.reclaimed,
	}
	if ac.lastErr != nil {
		st.LastErr = ac.lastErr.Error()
	}
	return st
}

// GC reclaims the values of dead delta rows no pinned snapshot can still
// see, returning how many rows it freed. The background runner calls this
// automatically; it is exposed for tools and tests.
func (db *Database) GC() int { return db.dstore.GC() }
