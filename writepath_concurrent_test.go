package tde

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tde/internal/exec"
	"tde/internal/iofault"
	"tde/internal/vec"
)

// longStress scales the concurrent sweeps up for the nightly run: more
// writers, more transfers per writer, so merges and GC happen many times
// under live readers.
var longStress = flag.Bool("long", false, "run the long concurrent stress sweep")

// saveAccountsFile builds a file-backed database with an acct(id, val)
// table of n rows, each starting at val, and reopens it writable.
func saveAccountsFile(t *testing.T, n, val int) (*Database, string) {
	t.Helper()
	var csv strings.Builder
	csv.WriteString("id,val\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&csv, "%d,%d\n", i, val)
	}
	mem := New()
	if err := mem.ImportCSV("acct", []byte(csv.String()), DefaultImportOptions()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "acct.tde")
	if err := mem.Save(path); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return db, path
}

func mustAtoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return n
}

func acctVal(t *testing.T, db *Database, id int) int {
	t.Helper()
	rows := queryRows(t, db, fmt.Sprintf("SELECT val FROM acct WHERE id = %d", id))
	if len(rows) != 1 {
		t.Fatalf("acct %d: %v", id, rows)
	}
	return mustAtoi(t, rows[0][0])
}

// TestCommitConflictFirstCommitterWins pins the optimistic concurrency
// contract: of two transactions updating the same row, the first to
// commit wins and the second fails with ErrConflict, its effects fully
// discarded; a retry against the fresh snapshot then succeeds.
func TestCommitConflictFirstCommitterWins(t *testing.T) {
	db, _ := saveAccountsFile(t, 4, 100)
	defer db.Close()

	tx1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Exec("UPDATE acct SET val = val + 1 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec("UPDATE acct SET val = val + 7 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	err = tx2.Commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer: got %v, want ErrConflict", err)
	}
	if got := acctVal(t, db, 2); got != 101 {
		t.Fatalf("lost-update check: val %d, want 101 (loser must leave no trace)", got)
	}
	// The loser's retry against a fresh snapshot commits cleanly.
	if _, err := db.Exec("UPDATE acct SET val = val + 7 WHERE id = 2"); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if got := acctVal(t, db, 2); got != 108 {
		t.Fatalf("after retry: val %d, want 108", got)
	}
}

// TestDisjointWritersDoNotConflict: transactions touching different rows
// (or only inserting) commit concurrently without ErrConflict.
func TestDisjointWritersDoNotConflict(t *testing.T) {
	db, _ := saveAccountsFile(t, 4, 100)
	defer db.Close()

	tx1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Exec("UPDATE acct SET val = val + 1 WHERE id = 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec("UPDATE acct SET val = val + 2 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec("INSERT INTO acct VALUES (90, 5)"); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("disjoint rows must not conflict: %v", err)
	}
	if got := acctVal(t, db, 0); got != 101 {
		t.Fatalf("id 0: %d", got)
	}
	if got := acctVal(t, db, 1); got != 102 {
		t.Fatalf("id 1: %d", got)
	}
	if got := acctVal(t, db, 90); got != 5 {
		t.Fatalf("insert: %d", got)
	}
}

// TestExecRetryHotRow hammers one row from many goroutines through the
// built-in retry idiom; every increment must land exactly once.
func TestExecRetryHotRow(t *testing.T) {
	db, _ := saveAccountsFile(t, 1, 0)
	defer db.Close()
	const workers, perWorker = 8, 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := db.ExecRetry(context.Background(),
					"UPDATE acct SET val = val + 1 WHERE id = 0"); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := acctVal(t, db, 0); got != workers*perWorker {
		t.Fatalf("lost updates: val %d, want %d", got, workers*perWorker)
	}
}

// TestConcurrentInsertWriters: insert-only writers never conflict, and
// nothing is lost or duplicated across concurrent group commits.
func TestConcurrentInsertWriters(t *testing.T) {
	db, _ := saveAccountsFile(t, 1, 0)
	defer db.Close()
	const workers, perWorker = 6, 10
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx, err := db.Begin()
				if err != nil {
					errc <- err
					return
				}
				id := 100 + w*perWorker + i
				if _, err := tx.Exec(fmt.Sprintf("INSERT INTO acct VALUES (%d, %d)", id, w)); err != nil {
					errc <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errc <- fmt.Errorf("insert-only txn conflicted or failed: %w", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	rows := queryRows(t, db, "SELECT COUNT(*), SUM(id) FROM acct WHERE id >= 100")
	n := workers * perWorker
	wantSum := n*100 + n*(n-1)/2 // ids 100..100+n-1, each exactly once
	if rows[0][0] != strconv.Itoa(n) || rows[0][1] != strconv.Itoa(wantSum) {
		t.Fatalf("inserted rows %v, want count %d sum %d", rows[0], n, wantSum)
	}
}

// TestConcurrentSnapshotInvariant is the snapshot-isolation sweep the
// issue asks for: writers move value between accounts in two-statement
// transactions while readers continuously sum the table and background
// auto-compaction merges and GCs underneath. A reader observing a partial
// transaction — or a merge dropping/duplicating rows — breaks the
// invariant sum. Run under -race this also sweeps the locking.
func TestConcurrentSnapshotInvariant(t *testing.T) {
	const accounts, balance = 8, 100
	db, _ := saveAccountsFile(t, accounts, balance)
	defer db.Close()
	if err := db.EnableAutoCompact(AutoCompactOptions{
		MaxDeltaRows: 32,
		MaxDeadRows:  16,
		Interval:     2 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	const total = accounts * balance
	writers, transfers := 4, 20
	if *longStress {
		writers, transfers = 8, 400
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers+2)
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := (w + i) % accounts
				to := (w + i + 1 + w%3) % accounts
				if to == from {
					to = (to + 1) % accounts
				}
				amt := 1 + (w+i)%7
				for {
					tx, err := db.Begin()
					if err != nil {
						errc <- err
						return
					}
					_, err = tx.Exec(fmt.Sprintf("UPDATE acct SET val = val - %d WHERE id = %d", amt, from))
					if err == nil {
						_, err = tx.Exec(fmt.Sprintf("UPDATE acct SET val = val + %d WHERE id = %d", amt, to))
					}
					if err != nil {
						_ = tx.Rollback()
						errc <- err
						return
					}
					err = tx.Commit()
					if err == nil {
						break
					}
					if !errors.Is(err, ErrConflict) {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		go func() {
			for {
				select {
				case <-done:
					return
				default:
				}
				rows, err := db.Query("SELECT SUM(val) FROM acct")
				if err != nil {
					errc <- err
					return
				}
				if rows.Rows[0][0] != strconv.Itoa(total) {
					errc <- fmt.Errorf("reader saw a partial transaction: sum %s, want %d", rows.Rows[0][0], total)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if got := queryRows(t, db, "SELECT SUM(val) FROM acct"); got[0][0] != strconv.Itoa(total) {
		t.Fatalf("final sum %s, want %d", got[0][0], total)
	}
	db.DisableAutoCompact()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := queryRows(t, db, "SELECT SUM(val) FROM acct"); got[0][0] != strconv.Itoa(total) {
		t.Fatalf("post-compact sum %s, want %d", got[0][0], total)
	}
}

// viewAmountSum drains a held delta view's "amount" column the way a
// query would, returning the sum and row count it observes.
func viewAmountSum(t *testing.T, scanner *exec.DeltaScan) (sum int64, rows int) {
	t.Helper()
	qc := exec.NewQueryCtx(context.Background(), 0)
	if err := scanner.Open(qc); err != nil {
		t.Fatal(err)
	}
	defer scanner.Close()
	var b vec.Block
	for {
		more, err := scanner.Next(&b)
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			return sum, rows
		}
		for i := 0; i < b.N; i++ {
			sum += int64(b.Vecs[0].Data[i])
			rows++
		}
	}
}

// TestSnapshotHeldAcrossMergeAndGC pins an epoch, then churns the
// database past it — deletes of rows the snapshot sees, epoch GC, a full
// merge (base swap + overlay reset), more commits, GC again — and asserts
// the held snapshot still reads its epoch exactly.
func TestSnapshotHeldAcrossMergeAndGC(t *testing.T) {
	db, _ := saveOrdersFile(t)
	defer db.Close()
	// Build overlay state the snapshot will hold: inserted rows + updates.
	if _, err := db.Exec("INSERT INTO orders VALUES ('held', 1000, DATE '2014-05-01')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE orders SET amount = amount + 1 WHERE status = 'closed'"); err != nil {
		t.Fatal(err)
	}
	wantSum := int64(10 + 26 + 5 + 41 + 15 + 1000)
	wantRows := 6
	pinEpoch := db.dstore.Epoch()

	_, views, release := db.pinnedSnapshot()
	v := views["orders"]
	if v == nil {
		t.Fatal("no view for orders")
	}
	if v.Epoch != pinEpoch {
		t.Fatalf("view cut at epoch %d, want pinned %d", v.Epoch, pinEpoch)
	}

	// Churn: kill the rows the snapshot can see, GC, merge, write more, GC.
	if _, err := db.Exec("DELETE FROM orders WHERE status = 'held'"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE orders SET amount = amount * 2 WHERE amount < 50"); err != nil {
		t.Fatal(err)
	}
	db.GC()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO orders VALUES ('post', 7, DATE '2014-06-01')"); err != nil {
		t.Fatal(err)
	}
	db.GC()

	ds, err := exec.NewDeltaScan(v, false, "amount")
	if err != nil {
		t.Fatal(err)
	}
	sum, rows := viewAmountSum(t, ds)
	if sum != wantSum || rows != wantRows {
		t.Fatalf("held snapshot drifted: sum %d rows %d, want sum %d rows %d", sum, rows, wantSum, wantRows)
	}
	release()
	if got := db.dstore.Pins(); got != 0 {
		t.Fatalf("released snapshot still pinned: %d live epochs", got)
	}
	// The live database meanwhile sees the churned state.
	rowsNow := queryRows(t, db, "SELECT COUNT(*) FROM orders")
	if rowsNow[0][0] != "6" {
		t.Fatalf("live row count %v", rowsNow)
	}
}

// TestCloseAbortsInFlightTransactions: Close aborts open transactions
// (their later calls fail with ErrClosed), releases every epoch pin, and
// is idempotent.
func TestCloseAbortsInFlightTransactions(t *testing.T) {
	db, _ := saveOrdersFile(t)
	tx1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Exec("INSERT INTO orders VALUES ('x', 1, DATE '2014-01-01')"); err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Exec("INSERT INTO orders VALUES ('y', 2, DATE '2014-01-02')"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Exec after Close: %v, want ErrClosed", err)
	}
	if err := tx1.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit after Close: %v, want ErrClosed", err)
	}
	if err := tx2.Rollback(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rollback after Close: %v, want ErrClosed", err)
	}
	if _, err := db.Begin(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin after Close: %v, want ErrClosed", err)
	}
	if got := db.dstore.Pins(); got != 0 {
		t.Fatalf("Close leaked %d pinned epochs", got)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestBeginContextCancellation covers the context plumbing: a dead
// context fails Begin immediately, a deadline unblocks an admission wait,
// and cancellation after Begin fails the transaction's later statements
// and commit.
func TestBeginContextCancellation(t *testing.T) {
	db, _ := saveOrdersFile(t)
	defer db.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.BeginContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead context: %v", err)
	}

	// Hold admission closed (as a merge drain would) and let the deadline
	// expire inside the wait.
	db.wmu.Lock()
	db.quiescing = true
	db.wmu.Unlock()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	_, err := db.BeginContext(ctx2)
	cancel2()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked admission: %v, want DeadlineExceeded", err)
	}
	db.wmu.Lock()
	db.quiescing = false
	db.wakeAdmissionLocked()
	db.wmu.Unlock()

	// Cancellation between statements kills the transaction's remaining
	// work but leaves Rollback.
	ctx3, cancel3 := context.WithCancel(context.Background())
	tx, err := db.BeginContext(ctx3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO orders VALUES ('c', 3, DATE '2014-01-03')"); err != nil {
		t.Fatal(err)
	}
	cancel3()
	if _, err := tx.Exec("INSERT INTO orders VALUES ('d', 4, DATE '2014-01-04')"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Exec after cancel: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Commit after cancel: %v", err)
	}
	// The cancelled transaction left nothing behind.
	rows := queryRows(t, db, "SELECT COUNT(*) FROM orders")
	if rows[0][0] != "5" {
		t.Fatalf("cancelled txn leaked rows: %v", rows)
	}
}

// TestWriterPoisonedEntryPoints forces an unknown-outcome fsync failure
// and asserts every write entry point reports ErrWriterPoisoned, the
// un-synced commit never becomes visible, and a reopen recovers.
func TestWriterPoisonedEntryPoints(t *testing.T) {
	mem := importOrders(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "orders.tde")
	if err := mem.Save(path); err != nil {
		t.Fatal(err)
	}
	fs := iofault.NewInjector(nil)
	db, _, err := OpenWithOptions(path, OpenOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	// A transaction begun while healthy, with buffered work.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO orders VALUES ('pre', 50, DATE '2014-01-01')"); err != nil {
		t.Fatal(err)
	}

	fs.Script(iofault.Fault{Op: iofault.OpSync})
	_, err = db.Exec("INSERT INTO orders VALUES ('boom', 60, DATE '2014-01-02')")
	if !errors.Is(err, ErrWriterPoisoned) {
		t.Fatalf("poisoning commit: %v, want ErrWriterPoisoned", err)
	}
	// The staged-but-unsynced commit must not be visible.
	if rows := queryRows(t, db, "SELECT COUNT(*) FROM orders"); rows[0][0] != "5" {
		t.Fatalf("un-durable commit visible: %v", rows)
	}

	if _, err := db.Begin(); !errors.Is(err, ErrWriterPoisoned) {
		t.Fatalf("Begin: %v", err)
	}
	if _, err := tx.Exec("UPDATE orders SET amount = 1 WHERE status = 'open'"); !errors.Is(err, ErrWriterPoisoned) {
		t.Fatalf("Tx.Exec: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrWriterPoisoned) {
		t.Fatalf("Tx.Commit: %v", err)
	}
	if _, err := db.ExecRetry(context.Background(), "DELETE FROM orders WHERE amount = 10"); !errors.Is(err, ErrWriterPoisoned) {
		t.Fatalf("ExecRetry: %v", err)
	}
	if err := db.Compact(); !errors.Is(err, ErrWriterPoisoned) {
		t.Fatalf("Compact: %v", err)
	}
	if err := db.Save(filepath.Join(dir, "copy.tde")); !errors.Is(err, ErrWriterPoisoned) {
		t.Fatalf("Save: %v", err)
	}
	if !db.WriteStats().Poisoned {
		t.Fatal("WriteStats does not report the poisoned writer")
	}
	// Reads still work on the poisoned handle.
	if rows := queryRows(t, db, "SELECT COUNT(*) FROM orders"); rows[0][0] != "5" {
		t.Fatalf("read on poisoned db: %v", rows)
	}
	_ = db.Close()

	// Reopen through the real filesystem: the write path is healthy again
	// and the log's committed prefix decided each in-flight txn's fate.
	rdb, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if _, err := rdb.Exec("INSERT INTO orders VALUES ('after', 70, DATE '2014-02-01')"); err != nil {
		t.Fatalf("write after reopen: %v", err)
	}
}
