// URL logs: the Sect. 4.1.2 workload. A request-log column holds URLs;
// the analysis extracts each request's file extension and counts requests
// per file type. With the string column dictionary-compressed, the
// FILE_EXT computation is pushed down to the URL domain — computed once
// per distinct URL instead of once per row — and FlowTable then sorts and
// narrows the computed extension column so the aggregation gets a fast
// hash.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"tde"
)

func main() {
	paths := []string{
		"/index.html", "/styles/site.css", "/js/app.js", "/img/logo.png",
		"/img/banner.jpg", "/api/data", "/docs/guide.pdf", "/favicon.ico",
		"/js/vendor.js", "/img/icon.png", "/download/tool.zip", "/health",
	}
	rng := rand.New(rand.NewSource(1))
	var csv strings.Builder
	csv.WriteString("url,bytes\n")
	for i := 0; i < 200000; i++ {
		p := paths[rng.Intn(len(paths))]
		// Some requests carry query strings, which FILE_EXT must ignore.
		if rng.Intn(4) == 0 {
			p += fmt.Sprintf("?session=%d", rng.Intn(1000))
		}
		fmt.Fprintf(&csv, "https://example.com%s,%d\n", p, 100+rng.Intn(10000))
	}

	db := tde.New()
	if err := db.ImportCSV("requests", []byte(csv.String()), tde.DefaultImportOptions()); err != nil {
		log.Fatal(err)
	}

	cols, _ := db.Columns("requests")
	for _, c := range cols {
		if c.Name == "url" {
			fmt.Printf("url column: %d distinct of %d rows, heap sorted: %v\n",
				c.Cardinality, c.Rows, c.HeapSorted)
		}
	}

	res, err := db.Query(`SELECT FILE_EXT(url) AS ext, COUNT(*), SUM(bytes)
	                      FROM requests GROUP BY ext ORDER BY ext`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrequests per file type:")
	fmt.Printf("  %-6s %10s %14s\n", "ext", "requests", "bytes")
	for _, row := range res.Rows {
		ext := row[0]
		if ext == "" {
			ext = "(none)"
		}
		fmt.Printf("  %-6s %10s %14s\n", ext, row[1], row[2])
	}
}
