// Rollup: the Sect. 8 future-work techniques, implemented. A run-length
// encoded date column's IndexTable is rolled up from days to months with
// MIN(start)/SUM(count) — converting the index without touching the main
// table's rows — and then the monthly aggregation is executed as a
// partitioned ordered aggregation across cores.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tde/internal/enc"
	"tde/internal/exec"
	"tde/internal/expr"
	"tde/internal/plan"
	"tde/internal/storage"
	"tde/internal/types"
)

func main() {
	// A year of chronologically-loaded fact rows: the date column
	// run-length encodes with one run per day.
	const perDay = 3000
	base := types.DaysFromCivil(2013, 1, 1)
	rng := rand.New(rand.NewSource(3))
	dw := enc.NewWriter(enc.WriterConfig{Signed: true, ConvertOptimal: true})
	vw := enc.NewWriter(enc.WriterConfig{Signed: true, ConvertOptimal: true})
	for d := 0; d < 365; d++ {
		for k := 0; k < perDay; k++ {
			dw.AppendOne(uint64(base + int64(d)))
			vw.AppendOne(uint64(rng.Intn(500)))
		}
	}
	dcol := &storage.Column{Name: "d", Type: types.Date, Data: dw.Finish()}
	dcol.Meta = enc.MetadataFromStats(dw.Stats(), true)
	vcol := &storage.Column{Name: "sales", Type: types.Integer, Data: vw.Finish()}
	vcol.Meta = enc.MetadataFromStats(vw.Stats(), true)
	tab := &storage.Table{Name: "facts", Columns: []*storage.Column{dcol, vcol}}
	fmt.Printf("date column: %v encoded, %d runs for %d rows\n",
		dcol.Data.Kind(), dcol.Data.NumRuns(), tab.Rows())

	// Daily index -> monthly index, entirely on the index.
	daily, err := plan.IndexTable(dcol)
	if err != nil {
		log.Fatal(err)
	}
	monthly, err := plan.RollUpIndex(daily,
		expr.NewDatePart(expr.TruncMonth, expr.NewColRef(0, "d", types.Date)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rolled %d daily runs into %d monthly runs\n", daily.Rows, monthly.Rows)

	// Partitioned ordered aggregation over the monthly index: each
	// partition scans its contiguous row ranges and aggregates ordered.
	rows, err := plan.PartitionedOrderedAggregate(monthly, tab, "sales", exec.Sum, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmonthly sales (partitioned ordered aggregation):")
	for _, kv := range rows {
		y, m, _ := types.CivilFromDays(kv[0])
		fmt.Printf("  %04d-%02d: %d\n", y, m, kv[1])
	}
}
