// Star join: a fact table joined to dimension tables through SQL, with
// Tableau's NULL-join semantics and the tactical fetch-join upgrade on
// the dense dimension key.
package main

import (
	"bytes"
	"fmt"
	"log"

	"tde"
	"tde/internal/tpch"
)

func main() {
	g := tpch.New(0.01, 2)
	db := tde.New()

	var orders bytes.Buffer
	if err := g.WriteOrders(&orders); err != nil {
		log.Fatal(err)
	}
	opt := tde.DefaultImportOptions()
	opt.Schema = []string{"o_orderkey:int", "o_custkey:int", "o_orderstatus:str",
		"o_totalprice:real", "o_orderdate:date", "o_orderpriority:str",
		"o_clerk:str", "o_shippriority:int", "o_comment:str"}
	opt.HeaderSet, opt.HasHeader = true, false
	if err := db.ImportCSV("orders", orders.Bytes(), opt); err != nil {
		log.Fatal(err)
	}

	var customers bytes.Buffer
	if err := g.WriteCustomer(&customers); err != nil {
		log.Fatal(err)
	}
	copt := tde.DefaultImportOptions()
	copt.Schema = []string{"c_custkey:int", "c_name:str", "c_address:str",
		"c_nationkey:int", "c_phone:str", "c_acctbal:real",
		"c_mktsegment:str", "c_comment:str"}
	copt.HeaderSet, copt.HasHeader = true, false
	if err := db.ImportCSV("customer", customers.Bytes(), copt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders: %d rows, customer: %d rows\n\n",
		db.Rows("orders"), db.Rows("customer"))

	// Revenue per market segment: the join key c_custkey is dense and
	// unique (1..N), so the tactical optimizer runs this as a fetch join.
	res, err := db.Query(`SELECT c_mktsegment, COUNT(*), SUM(o_totalprice)
	                      FROM orders JOIN customer ON orders.o_custkey = customer.c_custkey
	                      GROUP BY c_mktsegment ORDER BY c_mktsegment`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", res.Plan)
	fmt.Println("\norders and revenue by market segment:")
	for _, row := range res.Rows {
		fmt.Printf("  %-12s %8s orders  revenue %s\n", row[0], row[1], row[2])
	}

	// Filter the dimension side, aggregate the fact side.
	res, err = db.Query(`SELECT COUNT(*) FROM orders
	                     JOIN customer ON orders.o_custkey = customer.c_custkey
	                     WHERE c_mktsegment = 'BUILDING'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBUILDING-segment orders: %s\n", res.Rows[0][0])
}
