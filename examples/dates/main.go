// Dates: the paper's canonical dimension workload. A date column is
// dictionary-compressed (Sect. 3.4.3), so a range predicate is pushed to
// the small date domain as an invisible join — and because the sorted
// dictionary leaves a dense range of surviving tokens, the tactical
// optimizer upgrades the join to a fetch join (Sect. 4.1.2). Month
// roll-ups are computed on the domain too, never per row.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"tde"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	var csv strings.Builder
	csv.WriteString("d,sales\n")
	for i := 0; i < 300000; i++ {
		m := 1 + rng.Intn(12)
		day := 1 + rng.Intn(28)
		fmt.Fprintf(&csv, "2013-%02d-%02d,%d\n", m, day, 10+rng.Intn(500))
	}

	db := tde.New()
	if err := db.ImportCSV("facts", []byte(csv.String()), tde.DefaultImportOptions()); err != nil {
		log.Fatal(err)
	}

	// Convert the date column into a dictionary-compressed dimension: a
	// sorted scalar dictionary of ~336 distinct days, with the row data
	// reduced to narrow tokens.
	if err := db.CompressColumn("facts", "d"); err != nil {
		log.Fatal(err)
	}
	cols, _ := db.Columns("facts")
	for _, c := range cols {
		if c.Name == "d" {
			fmt.Printf("date column: dictionary of %d days, token width %d byte(s)\n",
				c.DictionarySize, c.WidthBytes)
		}
	}

	// Range filter: watch the plan use DictionaryTable + the fetch join.
	res, err := db.Query(`SELECT COUNT(*), SUM(sales) FROM facts
	                      WHERE d >= DATE '2013-06-01' AND d < DATE '2013-09-01'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsummer query plan:", res.Plan)
	fmt.Printf("summer: %s rows, %s total sales\n", res.Rows[0][0], res.Rows[0][1])

	// Month roll-up: TRUNC_MONTH is evaluated on the way to a 12-group
	// aggregation (Sect. 8 sketches doing this on the IndexTable itself).
	res, err = db.Query(`SELECT MONTH(d) AS m, SUM(sales) FROM facts
	                     GROUP BY m ORDER BY m`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsales by month:")
	for _, row := range res.Rows {
		fmt.Printf("  month %2s: %s\n", row[0], row[1])
	}
}
