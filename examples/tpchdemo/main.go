// TPC-H demo: generate lineitem text, import it through the full
// TextScan/FlowTable pipeline, inspect what the dynamic encoder chose for
// each column, and run classic analytic queries.
package main

import (
	"bytes"
	"fmt"
	"log"

	"tde"
	"tde/internal/tpch"
)

func main() {
	g := tpch.New(0.02, 1) // ~120k lineitem rows
	var buf bytes.Buffer
	if err := g.WriteLineitem(&buf); err != nil {
		log.Fatal(err)
	}

	db := tde.New()
	opt := tde.DefaultImportOptions()
	opt.Schema = schema()
	opt.HeaderSet, opt.HasHeader = true, false
	if err := db.ImportCSV("lineitem", buf.Bytes(), opt); err != nil {
		log.Fatal(err)
	}
	logical, physical, _ := db.Sizes("lineitem")
	fmt.Printf("lineitem: %d rows; text %dK -> logical %dK -> physical %dK\n\n",
		db.Rows("lineitem"), buf.Len()/1024, logical/1024, physical/1024)

	fmt.Println("what the dynamic encoder chose (Sect. 3.2):")
	cols, _ := db.Columns("lineitem")
	for _, c := range cols {
		fmt.Printf("  %-16s %-9s %-7s width %d\n", c.Name, c.Type, c.Encoding, c.WidthBytes)
	}

	// The pricing summary shape of TPC-H Q1.
	res, err := db.Query(`SELECT l_returnflag, l_linestatus, SUM(l_quantity),
	                             AVG(l_extendedprice), COUNT(*)
	                      FROM lineitem GROUP BY l_returnflag, l_linestatus
	                      ORDER BY l_returnflag, l_linestatus`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npricing summary (Q1 shape):")
	for _, row := range res.Rows {
		fmt.Printf("  %s %s  qty=%s  avg_price=%.10s  count=%s\n",
			row[0], row[1], row[2], row[3], row[4])
	}

	// The forecast revenue shape of TPC-H Q6: a date range plus numeric
	// band filters.
	res, err = db.Query(`SELECT SUM(l_extendedprice * l_discount)
	                     FROM lineitem
	                     WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n1994 revenue effect (Q6 shape): %s\n", res.Rows[0][0])

	// Ship mode distribution: COUNTD shows the extract-side aggregate.
	res, err = db.Query(`SELECT COUNTD(l_shipmode), MEDIAN(l_quantity) FROM lineitem`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distinct ship modes: %s, median quantity: %s\n", res.Rows[0][0], res.Rows[0][1])
}

func schema() []string {
	kinds := []string{"int", "int", "int", "int", "int", "real", "real", "real",
		"str", "str", "date", "date", "date", "str", "str", "str"}
	out := make([]string, len(tpch.LineitemSchema))
	for i, n := range tpch.LineitemSchema {
		out[i] = n + ":" + kinds[i]
	}
	return out
}
