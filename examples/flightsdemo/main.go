// Flights: a realistic analytic session over the synthetic FAA on-time
// data set — the paper's "more typical of the data sets actually analysed
// by our customers" corpus, where every string column has a small domain
// and the whole table compresses dramatically.
package main

import (
	"bytes"
	"fmt"
	"log"

	"tde"
	"tde/internal/flights"
)

func main() {
	var buf bytes.Buffer
	if err := flights.New(500000, 1).Write(&buf); err != nil {
		log.Fatal(err)
	}
	db := tde.New()
	if err := db.ImportCSV("flights", buf.Bytes(), tde.DefaultImportOptions()); err != nil {
		log.Fatal(err)
	}
	logical, physical, _ := db.Sizes("flights")
	fmt.Printf("imported %d rows: text %dK -> logical %dK -> physical %dK\n",
		db.Rows("flights"), buf.Len()/1024, logical/1024, physical/1024)

	// Mean delays by carrier: string group keys ride on sorted heaps.
	res, err := db.Query(`SELECT Carrier, COUNT(*), AVG(DepDelay), MEDIAN(DepDelay)
	                      FROM flights GROUP BY Carrier ORDER BY Carrier`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndeparture delay by carrier (count / avg / median):")
	for _, row := range res.Rows[:6] {
		fmt.Printf("  %-3s %8s %8.8s %8s\n", row[0], row[1], row[2], row[3])
	}
	fmt.Printf("  ... (%d carriers)\n", len(res.Rows))

	// Seasonal pattern: month roll-up of a sorted date column.
	res, err = db.Query(`SELECT MONTH(FlightDate) AS m, AVG(ArrDelay)
	                     FROM flights GROUP BY m ORDER BY m`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\narrival delay by month:")
	for _, row := range res.Rows {
		fmt.Printf("  %2s: %.8s\n", row[0], row[1])
	}

	// A selective route query: equality filters on small-domain strings
	// become invisible joins.
	res, err = db.Query(`SELECT COUNT(*), AVG(ArrDelay) FROM flights
	                     WHERE Origin = 'SEA'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSEA departures: %s flights, avg arrival delay %.8s (plan: %s)\n",
		res.Rows[0][0], res.Rows[0][1], res.Plan)
}
