// Quickstart: import a CSV, look at the physical design the engine chose,
// run a few queries, and round-trip through the single-file format.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"tde"
)

func main() {
	// A small sales extract. Types, separator and header are inferred.
	var csv strings.Builder
	csv.WriteString("region,product,units,price,day\n")
	regions := []string{"west", "east", "north", "south"}
	products := []string{"widget", "gadget", "sprocket"}
	for i := 0; i < 50000; i++ {
		fmt.Fprintf(&csv, "%s,%s,%d,%d.%02d,2014-%02d-%02d\n",
			regions[i%len(regions)], products[(i/7)%len(products)],
			1+i%9, 10+i%50, i%100, i%12+1, i%28+1)
	}

	db := tde.New()
	if err := db.ImportCSV("sales", []byte(csv.String()), tde.DefaultImportOptions()); err != nil {
		log.Fatal(err)
	}

	// The import pipeline encoded every column and extracted metadata.
	fmt.Println("physical design:")
	cols, _ := db.Columns("sales")
	for _, c := range cols {
		fmt.Printf("  %-8s %-5s encoded as %-6s at width %d (%d -> %d bytes)\n",
			c.Name, c.Type, c.Encoding, c.WidthBytes, c.LogicalBytes, c.PhysicalBytes)
	}
	logical, physical, _ := db.Sizes("sales")
	fmt.Printf("table: logical %dK, physical %dK\n\n", logical/1024, physical/1024)

	// Aggregate. The string filter becomes an invisible join against the
	// region dictionary; check the plan.
	res, err := db.Query(`SELECT product, SUM(units), AVG(price)
	                      FROM sales WHERE region = 'west'
	                      GROUP BY product ORDER BY product`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", res.Plan)
	for _, row := range res.Rows {
		fmt.Println(" ", strings.Join(row, "  "))
	}

	// Persist as a single file and read it back.
	path := filepath.Join(os.TempDir(), "quickstart.tde")
	if err := db.Save(path); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	db2, err := tde.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	res, _ = db2.Query("SELECT COUNT(*) FROM sales")
	fmt.Printf("\nreloaded from %s: %s rows\n", path, res.Rows[0][0])
}
