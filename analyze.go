package tde

import (
	"context"
	"fmt"
	"strings"
	"time"

	"tde/internal/exec"
	"tde/internal/plan"
)

// ExplainAnalyze runs sql and returns the plan tree annotated with the
// measured per-operator actuals: rows and blocks produced, wall time
// (inclusive of children), bytes decoded from storage, the tactical
// routine each operator chose at run time, and spill activity.
func (db *Database) ExplainAnalyze(sql string) (string, error) {
	res, err := db.ExplainAnalyzeContext(context.Background(), sql, QueryOptions{})
	if err != nil {
		return "", err
	}
	return res.ExplainAnalyze(), nil
}

// ExplainAnalyzeContext runs sql under the given context and options and
// returns the full Result; render the annotated tree with
// Result.ExplainAnalyze, or consume Result.Stats() directly.
func (db *Database) ExplainAnalyzeContext(ctx context.Context, sql string, opt QueryOptions) (*Result, error) {
	return db.QueryContext(ctx, sql, opt)
}

// ExplainAnalyze renders the executed plan tree with per-operator
// actuals, one operator per line in plan order:
//
//	#1 Limit(10)  rows=10 blocks=1 time=2.1ms
//	└─ #2 HashJoin [hash]  rows=812 blocks=1 time=2.0ms
//	   ├─ #3 Scan(lineitem) [for+dict]  rows=60175 blocks=59 time=1.1ms bytes=481KB
//	   └─ #4 FlowTable [dict+raw]  rows=25 time=0.4ms
//
// IDs are the stable plan-assigned operator IDs; [brackets] show the
// tactical routine or encoding path chosen at run time; spilling
// operators append their spill counters.
func (r *Result) ExplainAnalyze() string {
	if r.tree == nil {
		return r.Plan
	}
	byID := make(map[int]OperatorStats, len(r.stats.Operators))
	for _, s := range r.stats.Operators {
		byID[s.ID] = s
	}
	var b strings.Builder
	var walk func(n *exec.PlanNode, prefix string, childPrefix string)
	walk = func(n *exec.PlanNode, prefix, childPrefix string) {
		b.WriteString(prefix)
		b.WriteString(renderOpLine(n, byID[n.ID]))
		b.WriteByte('\n')
		for i, c := range n.Children {
			if i == len(n.Children)-1 {
				walk(c, childPrefix+"└─ ", childPrefix+"   ")
			} else {
				walk(c, childPrefix+"├─ ", childPrefix+"│  ")
			}
		}
	}
	walk(r.tree, "", "")
	fmt.Fprintf(&b, "memory_peak=%s spill_peak=%s\n",
		fmtTraceBytes(r.stats.MemoryPeak), fmtTraceBytes(r.stats.SpillPeak))
	return b.String()
}

// renderOpLine formats one operator's annotation line.
func renderOpLine(n *exec.PlanNode, s OperatorStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s", n.ID, n.Kind)
	if n.Label != "" {
		fmt.Fprintf(&b, "(%s)", n.Label)
	}
	if s.Routine != "" {
		fmt.Fprintf(&b, " [%s]", s.Routine)
	}
	fmt.Fprintf(&b, "  rows=%d blocks=%d time=%s",
		s.RowsOut, s.BlocksOut, fmtOpTime(s.OpenNanos+s.NextNanos))
	if s.BytesScanned > 0 {
		fmt.Fprintf(&b, " bytes=%s", fmtTraceBytes(s.BytesScanned))
	}
	if s.CacheHits > 0 || s.CacheMisses > 0 {
		fmt.Fprintf(&b, " cache=%d/%d", s.CacheHits, s.CacheHits+s.CacheMisses)
	}
	if s.BlocksSkipped > 0 {
		fmt.Fprintf(&b, " skipped=%d", s.BlocksSkipped)
	}
	if sp := s.Spill; sp != nil {
		fmt.Fprintf(&b, " spill(spills=%d parts=%d depth=%d wrote=%s read=%s)",
			sp.Spills, sp.Partitions, sp.MaxDepth,
			fmtTraceBytes(sp.BytesWritten), fmtTraceBytes(sp.BytesRead))
	}
	return b.String()
}

// fmtOpTime renders a nanosecond wall time compactly (µs under 1ms).
func fmtOpTime(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d/time.Microsecond)
	}
}

func fmtTraceBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ExplainAnalyzeWithOptions is ExplainAnalyze under explicit strategic
// optimizer options (worker counts, routing, plan shape).
func (db *Database) ExplainAnalyzeWithOptions(sql string, opt plan.Options) (string, error) {
	res, err := db.ExplainAnalyzeContext(context.Background(), sql, QueryOptions{Plan: opt})
	if err != nil {
		return "", err
	}
	return res.ExplainAnalyze(), nil
}
