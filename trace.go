package tde

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Chrome trace event format (the JSON Array / traceEvents flavour that
// chrome://tracing and Perfetto load): one "X" complete event per
// operator spanning its first-to-last activity, with the runtime
// counters attached as args, plus one "M" metadata event per operator
// naming its thread row. All operators of one query share pid 1; each
// operator's plan ID is its tid, so the trace rows mirror the plan.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// WriteTrace exports the query's per-operator runtime stats as a Chrome
// trace (load the file in chrome://tracing or ui.perfetto.dev).
// Timestamps are relative to the process's profiling epoch, so multiple
// queries traced from one process line up on a shared timeline.
func (r *Result) WriteTrace(w io.Writer) error {
	tf := traceFile{TraceEvents: []traceEvent{}}
	for _, s := range r.stats.Operators {
		name := s.Kind
		if s.Label != "" {
			name = fmt.Sprintf("%s(%s)", s.Kind, s.Label)
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name:  "thread_name",
			Phase: "M", PID: 1, TID: s.ID,
			Args: map[string]any{"name": fmt.Sprintf("#%d %s", s.ID, name)},
		})
		start := s.StartNanos
		end := s.EndNanos
		if end < start {
			end = start
		}
		args := map[string]any{
			"rows_in":    s.RowsIn,
			"rows_out":   s.RowsOut,
			"blocks_in":  s.BlocksIn,
			"blocks_out": s.BlocksOut,
			"open_ns":    s.OpenNanos,
			"next_ns":    s.NextNanos,
		}
		if s.Routine != "" {
			args["routine"] = s.Routine
		}
		if s.BytesScanned > 0 {
			args["bytes_scanned"] = s.BytesScanned
		}
		if sp := s.Spill; sp != nil {
			args["spills"] = sp.Spills
			args["spill_partitions"] = sp.Partitions
			args["spill_bytes_written"] = sp.BytesWritten
			args["spill_bytes_read"] = sp.BytesRead
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: fmt.Sprintf("#%d %s", s.ID, name), Cat: s.Kind,
			Phase: "X",
			TS:    float64(start) / 1e3,
			Dur:   float64(end-start) / 1e3,
			PID:   1, TID: s.ID,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// SaveTrace writes the Chrome trace to path (see WriteTrace).
func (r *Result) SaveTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
