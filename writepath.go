package tde

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"sync"
	"time"

	"tde/internal/delta"
	"tde/internal/exec"
	"tde/internal/expr"
	"tde/internal/plan"
	"tde/internal/sqlparse"
	"tde/internal/storage"
	"tde/internal/types"
	"tde/internal/vec"
	"tde/internal/wal"
)

// This file is the transaction layer: Begin/Exec/Commit/Rollback on top
// of the delta store (in-memory visibility) and the WAL (durability), and
// Compact, which folds the overlay back into compressed base extents.
//
// Writers are optimistically concurrent. BeginContext pins an epoch
// snapshot and admits the transaction (admission blocks only while a
// merge quiesces writers or auto-compaction backpressure engages);
// statements buffer physical operations privately, reading through a view
// of the pinned snapshot plus the transaction's own earlier writes.
// Commit serializes only its memory-speed steps under db.wmu — conflict
// validation (first-committer-wins: ErrConflict on losing a row race) and
// the WAL append of the whole record run — then leaves the mutex and
// makes the run durable via the log's group commit, sharing one fsync
// with every concurrently committing transaction. Only after the fsync
// does the transaction's epoch publish, so readers never observe a
// transaction that could still fail its durability point. Readers are
// never blocked — queries pin an epoch snapshot and proceed against
// immutable state.

// walState tracks what Begin must do to the WAL sidecar before its first
// append.
type walState int

const (
	// walNone: no sidecar exists; create one bound to the current base.
	walNone walState = iota
	// walStale: the sidecar is bound to a previous base image (a crash hit
	// between Compact's base swap and its WAL rotation); its transactions
	// are already merged into the base. Recreate.
	walStale
	// walClean: the sidecar matches the base and ends cleanly; append.
	walClean
	// walDirty: the sidecar matches but carries a damaged or uncommitted
	// tail (crash artifact, already excluded from replay); physically
	// truncate to the committed prefix before appending.
	walDirty
	// walUnknown: a failed append left the on-disk tail state unknown;
	// re-derive it from the file before appending again.
	walUnknown
	// walQuarantined: the database was salvaged; the sidecar is untouched
	// and the write path is closed (ErrReadOnly).
	walQuarantined
)

// attachWAL reads the WAL sidecar at open, replays its committed
// transactions into the delta store, and records what the first write
// must do about the tail. Open itself never rewrites the sidecar: opening
// a database read-only leaves every byte on disk untouched.
func (db *Database) attachWAL() error {
	wpath := wal.Path(db.path)
	raw, err := db.fs.ReadFile(wpath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			db.walState = walNone
			return nil
		}
		return err
	}
	if db.salvaged != nil {
		// Replaying row operations onto a base with quarantined tables is
		// not sound; the salvage contract is read-only access to the
		// intact remainder. The sidecar stays on disk for tdecheck.
		db.walState = walQuarantined
		return nil
	}
	rp, err := wal.Parse(wpath, raw)
	if err != nil {
		// Header-level damage: the sidecar cannot be trusted at all, and
		// silently ignoring it could drop committed transactions.
		return err
	}
	if rp.Binding != db.binding {
		db.walState = walStale
		return nil
	}
	for _, txn := range rp.Txns {
		if _, err := db.dstore.Apply(txn.Ops); err != nil {
			// The log parsed but its operations contradict the base (e.g.
			// a delete past the row count): a mismatched or damaged pair.
			return fmt.Errorf("tde: replaying tx %d: %w", txn.ID,
				&wal.CorruptError{Path: wpath, Offset: rp.CleanLen, Reason: err.Error()})
		}
	}
	db.nextTx = rp.NextTx
	db.walClean = rp.CleanLen
	if rp.Tail == wal.TailClean {
		db.walState = walClean
	} else {
		db.walState = walDirty
	}
	return nil
}

// ensureWALLocked makes the sidecar appendable and opens the writer.
// Caller holds wmu.
func (db *Database) ensureWALLocked() error {
	if db.path == "" {
		return nil // in-memory database: no durability, no WAL
	}
	if db.wlog != nil {
		if db.wlog.Err() == nil {
			return nil
		}
		// A failed append poisoned the writer and may have left a torn
		// frame; drop the handle and re-derive the tail state from disk.
		_ = db.wlog.Close()
		db.wlog = nil
		db.walState = walUnknown
	}
	wpath := wal.Path(db.path)
	switch db.walState {
	case walNone, walStale:
		if err := wal.Create(db.fs, wpath, db.binding); err != nil {
			return err
		}
	case walClean:
	case walDirty:
		raw, err := db.fs.ReadFile(wpath)
		if err != nil {
			return err
		}
		if err := wal.RepairTail(db.fs, wpath, raw, db.walClean); err != nil {
			return err
		}
	case walUnknown:
		raw, err := db.fs.ReadFile(wpath)
		if err != nil {
			return err
		}
		rp, err := wal.Parse(wpath, raw)
		if err != nil {
			return err
		}
		if rp.Binding != db.binding {
			return fmt.Errorf("tde: wal %s no longer matches the open database", wpath)
		}
		if rp.Tail != wal.TailClean {
			if err := wal.RepairTail(db.fs, wpath, raw, rp.CleanLen); err != nil {
				return err
			}
		}
	case walQuarantined:
		return ErrReadOnly
	}
	lg, err := wal.OpenWriter(db.fs, wpath)
	if err != nil {
		return err
	}
	db.wlog = lg
	db.walState = walClean
	return nil
}

// Tx is one write transaction. Its statements see the database as of
// Begin (a pinned epoch snapshot) plus the transaction's own earlier
// writes; nothing is visible to readers (or durable) until Commit, and
// Commit fails with ErrConflict if a concurrent transaction won a row
// race. A Tx must finish with exactly one Commit or Rollback; a Tx's own
// methods are not safe for concurrent use, but any number of transactions
// may run concurrently.
type Tx struct {
	db *Database
	// ctx, from BeginContext, bounds the whole transaction: statements and
	// Commit fail once it is cancelled or past its deadline.
	ctx context.Context
	id  uint64
	// snapEpoch/snapGen identify the pinned snapshot every statement reads
	// through and Commit validates against.
	snapEpoch uint64
	snapGen   uint64
	ops       []delta.Op

	// mu guards done/aborted against db.Close force-aborting the
	// transaction while its owner uses it.
	mu      sync.Mutex
	done    bool
	aborted bool
}

var errTxDone = errors.New("tde: transaction already finished")
var errTxAborted = fmt.Errorf("%w: transaction aborted by database close", ErrClosed)

// poisonedLocked wraps db.writeErr as an ErrWriterPoisoned error. Caller
// holds wmu and has checked writeErr != nil.
func (db *Database) poisonedLocked() error {
	return fmt.Errorf("%w: %v", ErrWriterPoisoned, db.writeErr)
}

// poisoned returns the ErrWriterPoisoned error, or nil.
func (db *Database) poisoned() error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if db.writeErr != nil {
		return db.poisonedLocked()
	}
	return nil
}

// admitWakeLocked returns the channel the next admission change closes.
// Caller holds wmu.
func (db *Database) admitWakeLocked() chan struct{} {
	if db.admitWake == nil {
		db.admitWake = make(chan struct{})
	}
	return db.admitWake
}

// wakeAdmissionLocked wakes every waiter blocked on admission (Begin
// backpressure/quiesce waits, quiesce's own drain wait). Caller holds
// wmu.
func (db *Database) wakeAdmissionLocked() {
	if db.admitWake != nil {
		close(db.admitWake)
		db.admitWake = nil
	}
}

// Begin starts a write transaction against the current snapshot.
// Transactions are concurrent; Begin blocks only while a merge drains
// writers or auto-compaction backpressure holds admission.
func (db *Database) Begin() (*Tx, error) {
	return db.BeginContext(context.Background())
}

// BeginContext is Begin with the context bounding both the admission wait
// and the transaction's later statements and commit: cancellation or a
// deadline makes them fail, after which only Rollback remains.
func (db *Database) BeginContext(ctx context.Context) (*Tx, error) {
	if db.salvaged != nil {
		return nil, fmt.Errorf("%w: %d damaged regions", ErrReadOnly, len(db.salvaged.Entries))
	}
	db.wmu.Lock()
	for {
		if db.closed {
			db.wmu.Unlock()
			return nil, ErrClosed
		}
		if db.writeErr != nil {
			err := db.poisonedLocked()
			db.wmu.Unlock()
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			db.wmu.Unlock()
			return nil, err
		}
		if !db.quiescing && !db.overCapLocked() {
			break
		}
		ch := db.admitWakeLocked()
		db.wmu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		db.wmu.Lock()
	}
	if err := db.ensureWALLocked(); err != nil {
		db.wmu.Unlock()
		return nil, err
	}
	tx := &Tx{db: db, ctx: ctx, id: db.nextTx}
	db.nextTx++
	tx.snapEpoch, tx.snapGen = db.dstore.Pin()
	if db.txs == nil {
		db.txs = map[*Tx]bool{}
	}
	db.txs[tx] = true
	db.activeTx++
	db.wmu.Unlock()
	return tx, nil
}

// finishTx releases a finished transaction's snapshot pin and writer
// registration, and wakes admission (quiesce may be waiting for the drain,
// Begin for a slot). Called exactly once per transaction.
func (db *Database) finishTx(tx *Tx) {
	db.dstore.Unpin(tx.snapEpoch)
	db.wmu.Lock()
	delete(db.txs, tx)
	db.activeTx--
	db.wakeAdmissionLocked()
	db.wmu.Unlock()
}

// forceAbort abandons the transaction from db.Close: the owner's later
// calls fail with an error matching ErrClosed. No-op if already finished.
func (tx *Tx) forceAbort() {
	tx.mu.Lock()
	if tx.done {
		tx.mu.Unlock()
		return
	}
	tx.done = true
	tx.aborted = true
	tx.mu.Unlock()
	tx.db.finishTx(tx)
}

// start marks a Tx method in progress, failing if the transaction is
// finished. Callers pair it with tx.mu held through the method so Close's
// forceAbort serializes against statement execution.
func (tx *Tx) startLocked() error {
	if tx.aborted {
		return errTxAborted
	}
	if tx.done {
		return errTxDone
	}
	return nil
}

// Exec runs one INSERT, UPDATE or DELETE inside the transaction and
// returns the number of rows affected. A failed statement leaves the
// transaction usable: its effects are all-or-nothing per statement. The
// statement reads the transaction's pinned snapshot plus its own earlier
// writes, never concurrent committers' effects.
func (tx *Tx) Exec(sql string) (n int, err error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.startLocked(); err != nil {
		return 0, err
	}
	if err := tx.ctx.Err(); err != nil {
		return 0, err
	}
	db := tx.db
	if err := db.poisoned(); err != nil {
		return 0, err
	}
	st, err := sqlparse.ParseAny(sql)
	if err != nil {
		return 0, err
	}
	dml, ok := st.(*sqlparse.DML)
	if !ok {
		return 0, fmt.Errorf("tde: Exec wants INSERT, UPDATE or DELETE; use Query for SELECT")
	}
	t := db.findTable(dml.Table)
	if t == nil {
		return 0, fmt.Errorf("tde: unknown table %q", dml.Table)
	}
	if db.path != "" && !db.persisted[t.Name] {
		return 0, fmt.Errorf("tde: table %q is not in the saved base image; Save or Compact before writing to it", t.Name)
	}
	qc := exec.NewQueryCtx(tx.ctx, 0)
	defer containPanic(qc, &err)
	var ops []delta.Op
	if dml.Kind == sqlparse.DMLInsert {
		ops, n, err = buildInsert(dml, t)
	} else {
		ops, n, err = tx.buildMutate(qc, dml, t)
	}
	if err != nil {
		return 0, err
	}
	tx.ops = append(tx.ops, ops...)
	return n, nil
}

// Commit validates, logs and publishes the transaction:
//
//  1. Under db.wmu (memory-speed only): first-committer-wins validation
//     against everything committed since the snapshot — a lost row race
//     fails with ErrConflict and the transaction rolls back; provisional
//     row IDs remap to final slots; the rows stage under the next epoch,
//     still invisible; the whole record run (begin+ops+commit, final IDs)
//     appends to the WAL in one buffered write.
//  2. Outside wmu: the log syncs to the run's end offset — group commit,
//     one fsync shared by every transaction that appended before the
//     leader's sync. A sync failure poisons the writer (outcome unknown,
//     ErrWriterPoisoned); the staged epoch then never publishes, matching
//     "not durable".
//  3. The epoch publishes: readers see the transaction, wholly, from the
//     next snapshot on.
func (tx *Tx) Commit() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.startLocked(); err != nil {
		return err
	}
	tx.done = true
	db := tx.db
	defer db.finishTx(tx)
	if len(tx.ops) == 0 {
		return nil // nothing buffered: no WAL records at all
	}
	if err := tx.ctx.Err(); err != nil {
		return err
	}
	db.wmu.Lock()
	if db.closed {
		db.wmu.Unlock()
		return ErrClosed
	}
	if db.writeErr != nil {
		err := db.poisonedLocked()
		db.wmu.Unlock()
		return err
	}
	if err := db.ensureWALLocked(); err != nil {
		db.wmu.Unlock()
		return err
	}
	ops, epoch, err := db.dstore.CommitStage(tx.ops, tx.snapEpoch, tx.snapGen)
	if err != nil {
		db.wmu.Unlock()
		return err // ErrConflict, or a structural error; nothing staged
	}
	wlog := db.wlog
	var walEnd int64
	if wlog != nil {
		walEnd, err = wlog.AppendTxn(tx.id, ops, db.stringColsByName())
		if err != nil {
			// The run may be partially on disk but its commit record cannot
			// be durable (nothing synced it); still, the staged epoch must
			// never publish, and with the append handle poisoned no later
			// commit can sync it either. Poison the writer; reopen replays
			// the log's committed prefix.
			db.writeErr = fmt.Errorf("commit %d append failed: %w", tx.id, err)
			err = db.poisonedLocked()
			db.wmu.Unlock()
			return err
		}
	}
	db.wmu.Unlock()
	if wlog != nil {
		if err := wlog.SyncTo(walEnd); err != nil {
			// The commit record may or may not have reached disk; whether
			// the transaction is durable is unknowable without re-reading
			// the log. The staged epoch stays unpublished (consistent with
			// "not durable") and the write path shuts down so later writes
			// cannot diverge from a log that might say "durable". A reopen
			// re-derives the truth.
			db.wmu.Lock()
			if db.writeErr == nil {
				db.writeErr = fmt.Errorf("commit %d outcome unknown: %w", tx.id, err)
			}
			perr := db.poisonedLocked()
			db.wmu.Unlock()
			return perr
		}
	}
	db.dstore.Publish(epoch)
	db.nudgeCompactor()
	return nil
}

// Rollback abandons the transaction. Nothing was logged or staged for it,
// so there is nothing to undo beyond releasing its snapshot.
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.startLocked(); err != nil {
		return err
	}
	tx.done = true
	tx.db.finishTx(tx)
	return nil
}

// stringColsByName returns the WAL encoder's table-name → string-column
// mask lookup, caching per call site.
func (db *Database) stringColsByName() func(string) []bool {
	cache := map[string][]bool{}
	return func(name string) []bool {
		if m, ok := cache[name]; ok {
			return m
		}
		t := db.findTable(name)
		if t == nil {
			return nil
		}
		m := stringCols(t)
		cache[name] = m
		return m
	}
}

// Exec runs one INSERT, UPDATE or DELETE as its own transaction and
// returns the number of rows affected.
func (db *Database) Exec(sql string) (int, error) {
	return db.ExecContext(context.Background(), sql)
}

// ExecContext is Exec bounded by ctx.
func (db *Database) ExecContext(ctx context.Context, sql string) (int, error) {
	tx, err := db.BeginContext(ctx)
	if err != nil {
		return 0, err
	}
	n, err := tx.Exec(sql)
	if err != nil {
		_ = tx.Rollback()
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return n, nil
}

// ExecRetry is ExecContext with the optimistic-concurrency retry idiom
// built in: on ErrConflict the statement re-runs against a fresh snapshot
// after an exponentially growing, jittered backoff, until it commits, a
// different error occurs, or ctx ends. Use it for single-statement writes
// contending on hot rows.
func (db *Database) ExecRetry(ctx context.Context, sql string) (int, error) {
	return db.ExecRetryAttempts(ctx, sql, 0)
}

// ExecRetryAttempts is ExecRetry with a bound: at most attempts
// executions (so attempts-1 retries) before the last ErrConflict is
// returned as-is. attempts <= 0 means unbounded, i.e. ExecRetry. The
// backoff between attempts always honors ctx cancellation: a cancelled
// or expired context interrupts the sleep and returns the context's
// error immediately.
func (db *Database) ExecRetryAttempts(ctx context.Context, sql string, attempts int) (int, error) {
	backoff := time.Millisecond
	for attempt := 1; ; attempt++ {
		n, err := db.ExecContext(ctx, sql)
		if err == nil || !errors.Is(err, ErrConflict) {
			return n, err
		}
		if attempts > 0 && attempt >= attempts {
			return 0, err
		}
		if err := retryBackoff(ctx, &backoff); err != nil {
			return 0, err
		}
	}
}

// retryBackoff sleeps one jittered backoff step, doubling the step up to
// a cap, and returns early with the context's error if ctx ends first.
func retryBackoff(ctx context.Context, backoff *time.Duration) error {
	const maxBackoff = 50 * time.Millisecond
	// Full jitter: sleep a uniformly random slice of the current backoff
	// so colliding retriers decorrelate.
	d := time.Duration(rand.Int64N(int64(*backoff))) + *backoff/2
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
		return ctx.Err()
	}
	if *backoff *= 2; *backoff > maxBackoff {
		*backoff = maxBackoff
	}
	return nil
}

// findTable resolves a statement's table name case-insensitively, like
// the SELECT planner does.
func (db *Database) findTable(name string) *storage.Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		if strings.EqualFold(t.Name, name) {
			return t
		}
	}
	return nil
}

func stringCols(t *storage.Table) []bool {
	out := make([]bool, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Type == types.String
	}
	return out
}

// buildInsert turns an INSERT's constant value rows into insert ops.
// Unlisted columns insert as NULL.
func buildInsert(dml *sqlparse.DML, t *storage.Table) ([]delta.Op, int, error) {
	cols := t.Columns
	pos := make([]int, len(cols)) // column -> index into the VALUES tuple
	if dml.Columns == nil {
		for i := range pos {
			pos[i] = i
		}
	} else {
		for i := range pos {
			pos[i] = -1
		}
		for vi, name := range dml.Columns {
			ci := -1
			for i, c := range cols {
				if strings.EqualFold(c.Name, name) {
					ci = i
					break
				}
			}
			if ci < 0 {
				return nil, 0, fmt.Errorf("tde: table %q has no column %q", t.Name, name)
			}
			if pos[ci] != -1 {
				return nil, 0, fmt.Errorf("tde: column %q listed twice", name)
			}
			pos[ci] = vi
		}
	}
	ops := make([]delta.Op, 0, len(dml.Rows))
	for _, exprs := range dml.Rows {
		if dml.Columns == nil && len(exprs) != len(cols) {
			return nil, 0, fmt.Errorf("tde: INSERT row has %d values for %d columns", len(exprs), len(cols))
		}
		row := make([]delta.Value, len(cols))
		for ci, c := range cols {
			if pos[ci] < 0 {
				row[ci] = delta.NullOf(c.Type)
				continue
			}
			v, err := constValue(exprs[pos[ci]], c)
			if err != nil {
				return nil, 0, err
			}
			row[ci] = v
		}
		ops = append(ops, delta.Op{Table: t.Name, Kind: delta.OpInsert, Row: row})
	}
	return ops, len(ops), nil
}

// constValue folds e to a literal and coerces it to column c's type.
// Integer literals widen into Real columns; everything else must match.
func constValue(e expr.Expr, c *storage.Column) (delta.Value, error) {
	k, ok := expr.Simplify(e).(*expr.Const)
	if !ok {
		return delta.Value{}, fmt.Errorf("tde: value for column %q is not a constant: %s", c.Name, e)
	}
	if types.IsNull(k.Typ, k.Bits) && (k.Typ != types.String || k.Str == "") {
		return delta.NullOf(c.Type), nil
	}
	switch {
	case c.Type == types.String && k.Typ == types.String:
		return delta.String(k.Str), nil
	case c.Type == k.Typ && c.Type != types.String:
		return delta.Scalar(k.Bits), nil
	case c.Type == types.Real && k.Typ == types.Integer:
		return delta.Scalar(types.FromReal(float64(int64(k.Bits)))), nil
	}
	return delta.Value{}, fmt.Errorf("tde: value for column %q has type %s, want %s", c.Name, k.Typ, c.Type)
}

// setEval is one compiled SET clause: either a constant value or an
// expression evaluated per block against the old rows.
type setEval struct {
	col  int
	cval delta.Value
	e    expr.Expr // nil for constants
	et   types.Type
	out  *vec.Vector
}

// buildMutate runs an UPDATE or DELETE against the transaction's private
// snapshot (committed overlay plus its own pending ops) and returns the
// physical operations: DELETE per affected row, UPDATE as delete-old +
// insert-new.
func (tx *Tx) buildMutate(qc *exec.QueryCtx, dml *sqlparse.DML, t *storage.Table) ([]delta.Op, int, error) {
	view, err := tx.db.dstore.ViewWithAt(t, tx.snapEpoch, tx.ops)
	if err != nil {
		return nil, 0, err
	}
	ds, err := exec.NewDeltaScan(view, true)
	if err != nil {
		return nil, 0, err
	}
	schema := ds.Schema()
	ncols := len(schema) - 1 // trailing $rowid
	rowidIdx := ncols
	var op exec.Operator = ds
	if dml.Where != nil {
		pred, err := plan.Rebind(expr.Simplify(dml.Where), schema)
		if err != nil {
			return nil, 0, err
		}
		op = exec.NewSelect(op, pred)
	}
	var sets []setEval
	for _, sc := range dml.Set {
		ci := -1
		for i := 0; i < ncols; i++ {
			if strings.EqualFold(schema[i].Name, sc.Column) {
				ci = i
				break
			}
		}
		if ci < 0 {
			return nil, 0, fmt.Errorf("tde: table %q has no column %q", t.Name, sc.Column)
		}
		for _, s := range sets {
			if s.col == ci {
				return nil, 0, fmt.Errorf("tde: column %q assigned twice", sc.Column)
			}
		}
		colType := schema[ci].Type
		simplified := expr.Simplify(sc.Value)
		if k, ok := simplified.(*expr.Const); ok {
			v, err := constValue(k, t.Columns[ci])
			if err != nil {
				return nil, 0, err
			}
			sets = append(sets, setEval{col: ci, cval: v})
			continue
		}
		e, err := plan.Rebind(simplified, schema)
		if err != nil {
			return nil, 0, err
		}
		et := e.Type()
		ok := et == colType || (colType == types.Real && et == types.Integer)
		if !ok {
			return nil, 0, fmt.Errorf("tde: SET %s evaluates to %s, want %s", sc.Column, et, colType)
		}
		sets = append(sets, setEval{col: ci, e: e, et: et,
			out: &vec.Vector{Data: make([]uint64, vec.BlockSize)}})
	}

	if err := op.Open(qc); err != nil {
		return nil, 0, err
	}
	defer op.Close()
	var ops []delta.Op
	affected := 0
	b := vec.NewBlock(len(schema))
	for {
		ok, err := op.Next(b)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			break
		}
		for si := range sets {
			if sets[si].e != nil {
				sets[si].e.Eval(b, sets[si].out)
			}
		}
		for i := 0; i < b.N; i++ {
			rowid := b.Vecs[rowidIdx].Data[i]
			ops = append(ops, delta.Op{Table: t.Name, Kind: delta.OpDelete, RowID: rowid})
			affected++
			if dml.Kind != sqlparse.DMLUpdate {
				continue
			}
			row := make([]delta.Value, ncols)
			for ci := 0; ci < ncols; ci++ {
				row[ci] = vecValue(&b.Vecs[ci], i, schema[ci].Type, schema[ci].Type)
			}
			for _, s := range sets {
				if s.e == nil {
					row[s.col] = s.cval
				} else {
					row[s.col] = vecValue(s.out, i, schema[s.col].Type, s.et)
				}
			}
			ops = append(ops, delta.Op{Table: t.Name, Kind: delta.OpInsert, Row: row})
		}
	}
	return ops, affected, nil
}

// vecValue extracts row i of a vector as a delta value for a column of
// type colType; et is the vector's value type (Integer results widen into
// Real columns).
func vecValue(v *vec.Vector, i int, colType, et types.Type) delta.Value {
	bits := v.Data[i]
	if colType == types.String {
		if bits == types.NullToken {
			return delta.NullOf(types.String)
		}
		return delta.String(v.Heap.Get(bits))
	}
	if colType == types.Real && et == types.Integer {
		if types.IsNull(types.Integer, bits) {
			return delta.NullOf(types.Real)
		}
		return delta.Scalar(types.FromReal(float64(int64(bits))))
	}
	return delta.Scalar(bits)
}

// quiesce closes admission and drains in-flight writers, returning with
// db.wmu held; release reopens admission and drops the mutex. It is the
// merge path's exclusion protocol: with activeTx zero and admission
// closed, no commit can stage rows or touch the WAL handle while the base
// is rebuilt and swapped. Readers are unaffected throughout — they never
// take wmu. ctx bounds the drain wait (an open transaction whose owner
// never finishes would otherwise hold the merge forever); on ctx
// expiry admission reopens and quiesce fails with the context error.
func (db *Database) quiesce(ctx context.Context) (release func(), err error) {
	db.wmu.Lock()
	// Wait for any quiesce already holding the floor.
	for db.quiescing {
		if db.closed {
			db.wmu.Unlock()
			return nil, ErrClosed
		}
		ch := db.admitWakeLocked()
		db.wmu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		db.wmu.Lock()
	}
	if db.closed {
		db.wmu.Unlock()
		return nil, ErrClosed
	}
	// Close admission so new Begins cannot starve the drain, then wait for
	// the active transactions to finish (wmu released while blocked, so
	// their commits and finishes can proceed).
	db.quiescing = true
	for db.activeTx > 0 {
		ch := db.admitWakeLocked()
		db.wmu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			db.wmu.Lock()
			db.quiescing = false
			db.wakeAdmissionLocked()
			db.wmu.Unlock()
			return nil, ctx.Err()
		}
		db.wmu.Lock()
	}
	return func() {
		db.quiescing = false
		db.wakeAdmissionLocked()
		db.wmu.Unlock()
	}, nil
}

// Compact folds the write overlay back into compressed base extents: each
// dirty table is re-encoded through the import pipeline (dynamic
// encoding, heap sorting, type narrowing, fresh metadata), and on a
// file-backed database the merged image atomically replaces the base file
// and the WAL sidecar is retired. In-flight writers are drained first
// (admission pauses for the drain and swap); readers keep their snapshots
// throughout; the overlay resets empty.
func (db *Database) Compact() error {
	return db.CompactContext(context.Background(), QueryOptions{})
}

// CompactContext is Compact under a cancellable context and resource
// limits for the re-encode. ctx also bounds the writer drain.
func (db *Database) CompactContext(ctx context.Context, qopt QueryOptions) (err error) {
	if db.salvaged != nil {
		return fmt.Errorf("%w: %d damaged regions", ErrReadOnly, len(db.salvaged.Entries))
	}
	defer containPanic(nil, &err)
	release, err := db.quiesce(ctx)
	if err != nil {
		return err
	}
	defer release()
	if db.writeErr != nil {
		return db.poisonedLocked()
	}
	merged, dirty, err := db.materializeLocked(ctx, qopt)
	if err != nil {
		return err
	}
	if !dirty {
		return nil
	}
	if db.path == "" {
		db.mu.Lock()
		db.tables = merged
		db.dstore.Reset(merged)
		db.mu.Unlock()
		return nil
	}
	return db.swapBaseLocked(merged)
}

// materializeLocked builds the merged table set: tables without overlay
// rows pass through untouched; dirty tables are re-encoded from a
// DeltaScan of their snapshot. Caller holds wmu with writers drained (so
// no commit can land mid-merge).
func (db *Database) materializeLocked(ctx context.Context, qopt QueryOptions) (merged []*storage.Table, dirty bool, err error) {
	db.mu.RLock()
	tables := db.tables
	views := db.dstore.Views(tables)
	db.mu.RUnlock()
	if len(views) == 0 {
		return tables, false, nil
	}
	qc, cancel := qopt.newQueryCtx(ctx)
	defer cancel()
	defer qc.DetachPool()
	defer qc.CleanupSpill()
	defer containPanic(qc, &err)
	merged = make([]*storage.Table, len(tables))
	for i, t := range tables {
		v := views[t.Name]
		if v == nil {
			merged[i] = t
			continue
		}
		ds, err := exec.NewDeltaScan(v, false)
		if err != nil {
			return nil, false, err
		}
		ft := exec.NewFlowTable(ds, exec.FlowTableConfig{
			Encode: true, Accelerate: true, SortHeaps: true, Narrow: true,
		})
		bt, err := ft.BuildTable(qc)
		if err != nil {
			return nil, false, err
		}
		merged[i] = bt.ToTable(t.Name)
	}
	return merged, true, nil
}

// swapBaseLocked atomically replaces the on-disk base image with the
// merged tables and retires the WAL sidecar, then swaps the in-memory
// state. Ordering is what makes a crash at any point recoverable:
//
//  1. base file replaced (atomic rename) — a crash before leaves the old
//     base + live WAL (old state + replay = current state); a crash after
//     leaves the new base + a sidecar whose binding no longer matches,
//     which open ignores as stale (same visible state).
//  2. stale sidecar removed — pure tidiness; open ignores it either way.
//
// Caller holds writeMu.
func (db *Database) swapBaseLocked(merged []*storage.Table) error {
	// Serialize the merged image once up front: the storage writer is
	// deterministic (the crash harness asserts it), so WriteFileFS below
	// produces these exact bytes and the new WAL binding can be computed
	// before the file exists.
	var buf bytes.Buffer
	if err := storage.Write(&buf, merged); err != nil {
		return err
	}
	if db.wlog != nil {
		_ = db.wlog.Close()
		db.wlog = nil
	}
	if err := storage.WriteFileFS(db.fs, db.path, merged); err != nil {
		// The atomic rename may or may not have happened; disk and memory
		// can no longer be reconciled without a reopen.
		db.writeErr = err
		return err
	}
	db.binding = wal.Bind(buf.Bytes())
	_ = db.fs.Remove(wal.Path(db.path))
	db.walState = walNone
	// Table set and overlay reset swap under one exclusive db.mu hold, so
	// a reader's snapshot (which reads both under db.mu.RLock) sees either
	// old tables + old overlay or new tables + empty overlay — never the
	// torn combination that would drop uncompacted rows.
	db.mu.Lock()
	db.tables = merged
	db.dstore.Reset(merged)
	db.mu.Unlock()
	if db.persisted == nil {
		db.persisted = map[string]bool{}
	}
	for _, t := range merged {
		db.persisted[t.Name] = true
	}
	return nil
}
