package tde

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"

	"tde/internal/delta"
	"tde/internal/exec"
	"tde/internal/expr"
	"tde/internal/plan"
	"tde/internal/sqlparse"
	"tde/internal/storage"
	"tde/internal/types"
	"tde/internal/vec"
	"tde/internal/wal"
)

// This file is the transaction layer: Begin/Exec/Commit/Rollback on top
// of the delta store (in-memory visibility) and the WAL (durability), and
// Compact, which folds the overlay back into compressed base extents.
//
// The engine is single-writer: Begin takes db.writeMu and holds it until
// Commit or Rollback, so statements never race and the WAL's record runs
// never interleave. Readers are never blocked — queries pin an epoch
// snapshot and proceed against immutable state.

// walState tracks what Begin must do to the WAL sidecar before its first
// append.
type walState int

const (
	// walNone: no sidecar exists; create one bound to the current base.
	walNone walState = iota
	// walStale: the sidecar is bound to a previous base image (a crash hit
	// between Compact's base swap and its WAL rotation); its transactions
	// are already merged into the base. Recreate.
	walStale
	// walClean: the sidecar matches the base and ends cleanly; append.
	walClean
	// walDirty: the sidecar matches but carries a damaged or uncommitted
	// tail (crash artifact, already excluded from replay); physically
	// truncate to the committed prefix before appending.
	walDirty
	// walUnknown: a failed append left the on-disk tail state unknown;
	// re-derive it from the file before appending again.
	walUnknown
	// walQuarantined: the database was salvaged; the sidecar is untouched
	// and the write path is closed (ErrReadOnly).
	walQuarantined
)

// attachWAL reads the WAL sidecar at open, replays its committed
// transactions into the delta store, and records what the first write
// must do about the tail. Open itself never rewrites the sidecar: opening
// a database read-only leaves every byte on disk untouched.
func (db *Database) attachWAL() error {
	wpath := wal.Path(db.path)
	raw, err := db.fs.ReadFile(wpath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			db.walState = walNone
			return nil
		}
		return err
	}
	if db.salvaged != nil {
		// Replaying row operations onto a base with quarantined tables is
		// not sound; the salvage contract is read-only access to the
		// intact remainder. The sidecar stays on disk for tdecheck.
		db.walState = walQuarantined
		return nil
	}
	rp, err := wal.Parse(wpath, raw)
	if err != nil {
		// Header-level damage: the sidecar cannot be trusted at all, and
		// silently ignoring it could drop committed transactions.
		return err
	}
	if rp.Binding != db.binding {
		db.walState = walStale
		return nil
	}
	for _, txn := range rp.Txns {
		if _, err := db.dstore.Apply(txn.Ops); err != nil {
			// The log parsed but its operations contradict the base (e.g.
			// a delete past the row count): a mismatched or damaged pair.
			return fmt.Errorf("tde: replaying tx %d: %w", txn.ID,
				&wal.CorruptError{Path: wpath, Offset: rp.CleanLen, Reason: err.Error()})
		}
	}
	db.nextTx = rp.NextTx
	db.walClean = rp.CleanLen
	if rp.Tail == wal.TailClean {
		db.walState = walClean
	} else {
		db.walState = walDirty
	}
	return nil
}

// ensureWALLocked makes the sidecar appendable and opens the writer.
// Caller holds writeMu.
func (db *Database) ensureWALLocked() error {
	if db.path == "" {
		return nil // in-memory database: no durability, no WAL
	}
	if db.wlog != nil {
		if db.wlog.Err() == nil {
			return nil
		}
		// A failed append poisoned the writer and may have left a torn
		// frame; drop the handle and re-derive the tail state from disk.
		_ = db.wlog.Close()
		db.wlog = nil
		db.walState = walUnknown
	}
	wpath := wal.Path(db.path)
	switch db.walState {
	case walNone, walStale:
		if err := wal.Create(db.fs, wpath, db.binding); err != nil {
			return err
		}
	case walClean:
	case walDirty:
		raw, err := db.fs.ReadFile(wpath)
		if err != nil {
			return err
		}
		if err := wal.RepairTail(db.fs, wpath, raw, db.walClean); err != nil {
			return err
		}
	case walUnknown:
		raw, err := db.fs.ReadFile(wpath)
		if err != nil {
			return err
		}
		rp, err := wal.Parse(wpath, raw)
		if err != nil {
			return err
		}
		if rp.Binding != db.binding {
			return fmt.Errorf("tde: wal %s no longer matches the open database", wpath)
		}
		if rp.Tail != wal.TailClean {
			if err := wal.RepairTail(db.fs, wpath, raw, rp.CleanLen); err != nil {
				return err
			}
		}
	case walQuarantined:
		return ErrReadOnly
	}
	lg, err := wal.OpenWriter(db.fs, wpath)
	if err != nil {
		return err
	}
	db.wlog = lg
	db.walState = walClean
	return nil
}

// Tx is one write transaction. Its statements see the database as of
// Begin plus the transaction's own earlier writes; nothing is visible to
// readers (or durable) until Commit. A Tx must finish with exactly one
// Commit or Rollback — it holds the database's writer slot until then.
type Tx struct {
	db   *Database
	id   uint64
	ops  []delta.Op
	done bool
}

var errTxDone = errors.New("tde: transaction already finished")

// Begin starts a write transaction. The engine is single-writer: Begin
// blocks until any previous transaction commits or rolls back.
func (db *Database) Begin() (*Tx, error) {
	if db.salvaged != nil {
		return nil, fmt.Errorf("%w: %d damaged regions", ErrReadOnly, len(db.salvaged.Entries))
	}
	db.writeMu.Lock()
	if db.writeErr != nil {
		err := fmt.Errorf("tde: write path disabled (reopen to recover): %w", db.writeErr)
		db.writeMu.Unlock()
		return nil, err
	}
	if err := db.ensureWALLocked(); err != nil {
		db.writeMu.Unlock()
		return nil, err
	}
	tx := &Tx{db: db, id: db.nextTx}
	db.nextTx++
	if db.wlog != nil {
		if err := db.wlog.Begin(tx.id); err != nil {
			db.writeMu.Unlock()
			return nil, err
		}
	}
	return tx, nil
}

// Exec runs one INSERT, UPDATE or DELETE inside the transaction and
// returns the number of rows affected. A failed statement leaves the
// transaction usable: its effects are all-or-nothing per statement.
func (tx *Tx) Exec(sql string) (n int, err error) {
	if tx.done {
		return 0, errTxDone
	}
	st, err := sqlparse.ParseAny(sql)
	if err != nil {
		return 0, err
	}
	dml, ok := st.(*sqlparse.DML)
	if !ok {
		return 0, fmt.Errorf("tde: Exec wants INSERT, UPDATE or DELETE; use Query for SELECT")
	}
	db := tx.db
	t := db.findTable(dml.Table)
	if t == nil {
		return 0, fmt.Errorf("tde: unknown table %q", dml.Table)
	}
	if db.path != "" && !db.persisted[t.Name] {
		return 0, fmt.Errorf("tde: table %q is not in the saved base image; Save or Compact before writing to it", t.Name)
	}
	qc := exec.NewQueryCtx(context.Background(), 0)
	defer containPanic(qc, &err)
	var ops []delta.Op
	if dml.Kind == sqlparse.DMLInsert {
		ops, n, err = buildInsert(dml, t)
	} else {
		ops, n, err = tx.buildMutate(qc, dml, t)
	}
	if err != nil {
		return 0, err
	}
	if err := tx.log(t, ops); err != nil {
		return 0, err
	}
	return n, nil
}

// log appends a statement's operations to the WAL and then adopts them
// into the transaction. On a WAL error the operations are dropped: the
// sticky writer error guarantees no commit record can follow the
// statement's partial record run, so the run is dead weight the next
// repair truncates.
func (tx *Tx) log(t *storage.Table, ops []delta.Op) error {
	if tx.db.wlog != nil {
		strCol := stringCols(t)
		for _, op := range ops {
			var err error
			switch op.Kind {
			case delta.OpInsert:
				err = tx.db.wlog.Insert(tx.id, op.Table, op.Row, strCol)
			case delta.OpDelete:
				err = tx.db.wlog.Delete(tx.id, op.Table, op.RowID)
			}
			if err != nil {
				return err
			}
		}
	}
	tx.ops = append(tx.ops, ops...)
	return nil
}

// Commit makes the transaction durable (WAL commit record + fsync) and
// visible (delta-store apply under the next epoch), in that order: a
// crash between the two recovers the transaction from the log.
func (tx *Tx) Commit() error {
	if tx.done {
		return errTxDone
	}
	tx.done = true
	db := tx.db
	defer db.writeMu.Unlock()
	if len(tx.ops) == 0 {
		// Nothing to make durable; terminate the record run without the
		// fsync a real commit pays.
		if db.wlog != nil {
			_ = db.wlog.Abort(tx.id)
		}
		return nil
	}
	if db.wlog != nil {
		if err := db.wlog.Commit(tx.id); err != nil {
			// The commit record may or may not have reached disk; whether
			// the transaction is durable is unknowable without re-reading
			// the log. Memory stays on the pre-transaction snapshot
			// (consistent with "not durable"), and the write path shuts
			// down so later writes cannot diverge from a log that might
			// say "durable". A reopen re-derives the truth.
			db.writeErr = fmt.Errorf("commit %d outcome unknown: %w", tx.id, err)
			return fmt.Errorf("tde: %w", db.writeErr)
		}
	}
	if _, err := db.dstore.Apply(tx.ops); err != nil {
		// The WAL says committed but the overlay refused the operations —
		// an engine invariant broke. Poison writes; a reopen replays the
		// log against fresh state.
		db.writeErr = err
		return err
	}
	return nil
}

// Rollback abandons the transaction. Its WAL records are terminated with
// an abort record (best-effort; an unterminated run recovers identically)
// and never applied.
func (tx *Tx) Rollback() error {
	if tx.done {
		return errTxDone
	}
	tx.done = true
	db := tx.db
	if db.wlog != nil {
		_ = db.wlog.Abort(tx.id)
	}
	db.writeMu.Unlock()
	return nil
}

// Exec runs one INSERT, UPDATE or DELETE as its own transaction and
// returns the number of rows affected.
func (db *Database) Exec(sql string) (int, error) {
	tx, err := db.Begin()
	if err != nil {
		return 0, err
	}
	n, err := tx.Exec(sql)
	if err != nil {
		_ = tx.Rollback()
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return n, nil
}

// findTable resolves a statement's table name case-insensitively, like
// the SELECT planner does.
func (db *Database) findTable(name string) *storage.Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		if strings.EqualFold(t.Name, name) {
			return t
		}
	}
	return nil
}

func stringCols(t *storage.Table) []bool {
	out := make([]bool, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Type == types.String
	}
	return out
}

// buildInsert turns an INSERT's constant value rows into insert ops.
// Unlisted columns insert as NULL.
func buildInsert(dml *sqlparse.DML, t *storage.Table) ([]delta.Op, int, error) {
	cols := t.Columns
	pos := make([]int, len(cols)) // column -> index into the VALUES tuple
	if dml.Columns == nil {
		for i := range pos {
			pos[i] = i
		}
	} else {
		for i := range pos {
			pos[i] = -1
		}
		for vi, name := range dml.Columns {
			ci := -1
			for i, c := range cols {
				if strings.EqualFold(c.Name, name) {
					ci = i
					break
				}
			}
			if ci < 0 {
				return nil, 0, fmt.Errorf("tde: table %q has no column %q", t.Name, name)
			}
			if pos[ci] != -1 {
				return nil, 0, fmt.Errorf("tde: column %q listed twice", name)
			}
			pos[ci] = vi
		}
	}
	ops := make([]delta.Op, 0, len(dml.Rows))
	for _, exprs := range dml.Rows {
		if dml.Columns == nil && len(exprs) != len(cols) {
			return nil, 0, fmt.Errorf("tde: INSERT row has %d values for %d columns", len(exprs), len(cols))
		}
		row := make([]delta.Value, len(cols))
		for ci, c := range cols {
			if pos[ci] < 0 {
				row[ci] = delta.NullOf(c.Type)
				continue
			}
			v, err := constValue(exprs[pos[ci]], c)
			if err != nil {
				return nil, 0, err
			}
			row[ci] = v
		}
		ops = append(ops, delta.Op{Table: t.Name, Kind: delta.OpInsert, Row: row})
	}
	return ops, len(ops), nil
}

// constValue folds e to a literal and coerces it to column c's type.
// Integer literals widen into Real columns; everything else must match.
func constValue(e expr.Expr, c *storage.Column) (delta.Value, error) {
	k, ok := expr.Simplify(e).(*expr.Const)
	if !ok {
		return delta.Value{}, fmt.Errorf("tde: value for column %q is not a constant: %s", c.Name, e)
	}
	if types.IsNull(k.Typ, k.Bits) && (k.Typ != types.String || k.Str == "") {
		return delta.NullOf(c.Type), nil
	}
	switch {
	case c.Type == types.String && k.Typ == types.String:
		return delta.String(k.Str), nil
	case c.Type == k.Typ && c.Type != types.String:
		return delta.Scalar(k.Bits), nil
	case c.Type == types.Real && k.Typ == types.Integer:
		return delta.Scalar(types.FromReal(float64(int64(k.Bits)))), nil
	}
	return delta.Value{}, fmt.Errorf("tde: value for column %q has type %s, want %s", c.Name, k.Typ, c.Type)
}

// setEval is one compiled SET clause: either a constant value or an
// expression evaluated per block against the old rows.
type setEval struct {
	col  int
	cval delta.Value
	e    expr.Expr // nil for constants
	et   types.Type
	out  *vec.Vector
}

// buildMutate runs an UPDATE or DELETE against the transaction's private
// snapshot (committed overlay plus its own pending ops) and returns the
// physical operations: DELETE per affected row, UPDATE as delete-old +
// insert-new.
func (tx *Tx) buildMutate(qc *exec.QueryCtx, dml *sqlparse.DML, t *storage.Table) ([]delta.Op, int, error) {
	view, err := tx.db.dstore.ViewWith(t, tx.ops)
	if err != nil {
		return nil, 0, err
	}
	ds, err := exec.NewDeltaScan(view, true)
	if err != nil {
		return nil, 0, err
	}
	schema := ds.Schema()
	ncols := len(schema) - 1 // trailing $rowid
	rowidIdx := ncols
	var op exec.Operator = ds
	if dml.Where != nil {
		pred, err := plan.Rebind(expr.Simplify(dml.Where), schema)
		if err != nil {
			return nil, 0, err
		}
		op = exec.NewSelect(op, pred)
	}
	var sets []setEval
	for _, sc := range dml.Set {
		ci := -1
		for i := 0; i < ncols; i++ {
			if strings.EqualFold(schema[i].Name, sc.Column) {
				ci = i
				break
			}
		}
		if ci < 0 {
			return nil, 0, fmt.Errorf("tde: table %q has no column %q", t.Name, sc.Column)
		}
		for _, s := range sets {
			if s.col == ci {
				return nil, 0, fmt.Errorf("tde: column %q assigned twice", sc.Column)
			}
		}
		colType := schema[ci].Type
		simplified := expr.Simplify(sc.Value)
		if k, ok := simplified.(*expr.Const); ok {
			v, err := constValue(k, t.Columns[ci])
			if err != nil {
				return nil, 0, err
			}
			sets = append(sets, setEval{col: ci, cval: v})
			continue
		}
		e, err := plan.Rebind(simplified, schema)
		if err != nil {
			return nil, 0, err
		}
		et := e.Type()
		ok := et == colType || (colType == types.Real && et == types.Integer)
		if !ok {
			return nil, 0, fmt.Errorf("tde: SET %s evaluates to %s, want %s", sc.Column, et, colType)
		}
		sets = append(sets, setEval{col: ci, e: e, et: et,
			out: &vec.Vector{Data: make([]uint64, vec.BlockSize)}})
	}

	if err := op.Open(qc); err != nil {
		return nil, 0, err
	}
	defer op.Close()
	var ops []delta.Op
	affected := 0
	b := vec.NewBlock(len(schema))
	for {
		ok, err := op.Next(b)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			break
		}
		for si := range sets {
			if sets[si].e != nil {
				sets[si].e.Eval(b, sets[si].out)
			}
		}
		for i := 0; i < b.N; i++ {
			rowid := b.Vecs[rowidIdx].Data[i]
			ops = append(ops, delta.Op{Table: t.Name, Kind: delta.OpDelete, RowID: rowid})
			affected++
			if dml.Kind != sqlparse.DMLUpdate {
				continue
			}
			row := make([]delta.Value, ncols)
			for ci := 0; ci < ncols; ci++ {
				row[ci] = vecValue(&b.Vecs[ci], i, schema[ci].Type, schema[ci].Type)
			}
			for _, s := range sets {
				if s.e == nil {
					row[s.col] = s.cval
				} else {
					row[s.col] = vecValue(s.out, i, schema[s.col].Type, s.et)
				}
			}
			ops = append(ops, delta.Op{Table: t.Name, Kind: delta.OpInsert, Row: row})
		}
	}
	return ops, affected, nil
}

// vecValue extracts row i of a vector as a delta value for a column of
// type colType; et is the vector's value type (Integer results widen into
// Real columns).
func vecValue(v *vec.Vector, i int, colType, et types.Type) delta.Value {
	bits := v.Data[i]
	if colType == types.String {
		if bits == types.NullToken {
			return delta.NullOf(types.String)
		}
		return delta.String(v.Heap.Get(bits))
	}
	if colType == types.Real && et == types.Integer {
		if types.IsNull(types.Integer, bits) {
			return delta.NullOf(types.Real)
		}
		return delta.Scalar(types.FromReal(float64(int64(bits))))
	}
	return delta.Scalar(bits)
}

// Compact folds the write overlay back into compressed base extents: each
// dirty table is re-encoded through the import pipeline (dynamic
// encoding, heap sorting, type narrowing, fresh metadata), and on a
// file-backed database the merged image atomically replaces the base file
// and the WAL sidecar is retired. Readers keep their snapshots; the
// overlay resets empty.
func (db *Database) Compact() error {
	return db.CompactContext(context.Background(), QueryOptions{})
}

// CompactContext is Compact under a cancellable context and resource
// limits for the re-encode.
func (db *Database) CompactContext(ctx context.Context, qopt QueryOptions) (err error) {
	if db.salvaged != nil {
		return fmt.Errorf("%w: %d damaged regions", ErrReadOnly, len(db.salvaged.Entries))
	}
	defer containPanic(nil, &err)
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.writeErr != nil {
		return fmt.Errorf("tde: write path disabled (reopen to recover): %w", db.writeErr)
	}
	merged, dirty, err := db.materializeLocked(ctx, qopt)
	if err != nil {
		return err
	}
	if !dirty {
		return nil
	}
	if db.path == "" {
		db.mu.Lock()
		db.tables = merged
		db.mu.Unlock()
		db.dstore.Reset(merged)
		return nil
	}
	return db.swapBaseLocked(merged)
}

// materializeLocked builds the merged table set: tables without overlay
// rows pass through untouched; dirty tables are re-encoded from a
// DeltaScan of their snapshot. Caller holds writeMu (so no commit can
// land mid-merge).
func (db *Database) materializeLocked(ctx context.Context, qopt QueryOptions) (merged []*storage.Table, dirty bool, err error) {
	db.mu.RLock()
	tables := db.tables
	db.mu.RUnlock()
	views := db.dstore.Views(tables)
	if len(views) == 0 {
		return tables, false, nil
	}
	qc, cancel := qopt.newQueryCtx(ctx)
	defer cancel()
	defer qc.CleanupSpill()
	defer containPanic(qc, &err)
	merged = make([]*storage.Table, len(tables))
	for i, t := range tables {
		v := views[t.Name]
		if v == nil {
			merged[i] = t
			continue
		}
		ds, err := exec.NewDeltaScan(v, false)
		if err != nil {
			return nil, false, err
		}
		ft := exec.NewFlowTable(ds, exec.FlowTableConfig{
			Encode: true, Accelerate: true, SortHeaps: true, Narrow: true,
		})
		bt, err := ft.BuildTable(qc)
		if err != nil {
			return nil, false, err
		}
		merged[i] = bt.ToTable(t.Name)
	}
	return merged, true, nil
}

// swapBaseLocked atomically replaces the on-disk base image with the
// merged tables and retires the WAL sidecar, then swaps the in-memory
// state. Ordering is what makes a crash at any point recoverable:
//
//  1. base file replaced (atomic rename) — a crash before leaves the old
//     base + live WAL (old state + replay = current state); a crash after
//     leaves the new base + a sidecar whose binding no longer matches,
//     which open ignores as stale (same visible state).
//  2. stale sidecar removed — pure tidiness; open ignores it either way.
//
// Caller holds writeMu.
func (db *Database) swapBaseLocked(merged []*storage.Table) error {
	// Serialize the merged image once up front: the storage writer is
	// deterministic (the crash harness asserts it), so WriteFileFS below
	// produces these exact bytes and the new WAL binding can be computed
	// before the file exists.
	var buf bytes.Buffer
	if err := storage.Write(&buf, merged); err != nil {
		return err
	}
	if db.wlog != nil {
		_ = db.wlog.Close()
		db.wlog = nil
	}
	if err := storage.WriteFileFS(db.fs, db.path, merged); err != nil {
		// The atomic rename may or may not have happened; disk and memory
		// can no longer be reconciled without a reopen.
		db.writeErr = err
		return err
	}
	db.binding = wal.Bind(buf.Bytes())
	_ = db.fs.Remove(wal.Path(db.path))
	db.walState = walNone
	db.mu.Lock()
	db.tables = merged
	db.mu.Unlock()
	db.dstore.Reset(merged)
	if db.persisted == nil {
		db.persisted = map[string]bool{}
	}
	for _, t := range merged {
		db.persisted[t.Name] = true
	}
	return nil
}
