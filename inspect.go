package tde

import (
	"fmt"
	"os"

	"tde/internal/types"
	"tde/internal/wal"
)

// ColumnInfo is the public view of a stored column: its physical design
// (encoding, width, dictionaries) and the metadata extracted during load
// (Sect. 3.4.2) that drives both tactical optimization and UI choices.
type ColumnInfo struct {
	Name      string
	Type      string
	Collation string

	// Physical design.
	Encoding      string
	WidthBytes    int
	PhysicalBytes int
	LogicalBytes  int
	// DictionarySize is the scalar compression dictionary entry count
	// (0 = not dictionary compressed).
	DictionarySize int
	// HeapBytes / HeapSorted describe a string column's heap.
	HeapBytes  int
	HeapSorted bool

	// Extracted metadata.
	Rows     int
	HasRange bool
	Min, Max int64
	// MinDisplay/MaxDisplay render the range in the column's type (dates
	// as dates, reals as numbers); Min/Max hold the raw ordering values.
	MinDisplay, MaxDisplay string
	Cardinality            int
	CardinalityExact       bool
	HasNulls               bool
	NullsKnown             bool
	Sorted                 bool
	SortedKnown            bool
	Dense                  bool
	Unique                 bool

	// Zone map (DESIGN.md §15): per-block statistics scans prune with.
	// ZoneBlocks is the entry count (0 = no zone map); ZoneHasRange and
	// the Zone range aggregate the entries that carry bounds. For
	// dictionary-compressed columns the range is in the token domain and
	// the displays stay empty.
	ZoneBlocks       int
	ZoneNullsKnown   bool
	ZoneHasRange     bool
	ZoneMin, ZoneMax int64
	ZoneMinDisplay   string
	ZoneMaxDisplay   string
}

// Columns describes every column of a table.
func (db *Database) Columns(table string) ([]ColumnInfo, error) {
	t := db.lookup(table)
	if t == nil {
		return nil, fmt.Errorf("tde: unknown table %q", table)
	}
	out := make([]ColumnInfo, 0, len(t.Columns))
	for _, c := range t.Columns {
		ci := ColumnInfo{
			Name:           c.Name,
			Type:           c.Type.String(),
			Encoding:       c.Data.Kind().String(),
			WidthBytes:     c.Data.Width(),
			PhysicalBytes:  c.Data.PhysicalSize(),
			LogicalBytes:   c.Data.LogicalSize(),
			DictionarySize: len(c.Dict),
			Rows:           c.Rows(),
		}
		if c.Type == types.String {
			ci.Collation = c.Collation.String()
		}
		if c.Heap != nil {
			ci.HeapBytes = c.Heap.Size()
			ci.HeapSorted = c.Heap.Sorted()
		}
		md := c.Meta
		ci.HasRange = md.HasRange
		ci.Min, ci.Max = md.Min, md.Max
		if md.HasRange && c.Type != types.String {
			ci.MinDisplay = types.Format(c.Type, uint64(md.Min))
			ci.MaxDisplay = types.Format(c.Type, uint64(md.Max))
		}
		ci.Cardinality = md.Cardinality
		ci.CardinalityExact = md.CardinalityExact
		ci.HasNulls, ci.NullsKnown = md.HasNulls, md.NullsKnown
		ci.Sorted, ci.SortedKnown = md.SortedAsc, md.SortedKnown
		ci.Dense, ci.Unique = md.Dense, md.Unique
		if z := c.Zones; z != nil {
			ci.ZoneBlocks = len(z.Entries)
			ci.ZoneNullsKnown = z.NullsKnown
			for i := range z.Entries {
				e := &z.Entries[i]
				if !e.HasRange {
					continue
				}
				if !ci.ZoneHasRange {
					ci.ZoneHasRange = true
					ci.ZoneMin, ci.ZoneMax = e.Min, e.Max
					continue
				}
				if e.Min < ci.ZoneMin {
					ci.ZoneMin = e.Min
				}
				if e.Max > ci.ZoneMax {
					ci.ZoneMax = e.Max
				}
			}
			if ci.ZoneHasRange && c.Dict == nil && c.Type != types.String {
				ci.ZoneMinDisplay = types.Format(c.Type, uint64(ci.ZoneMin))
				ci.ZoneMaxDisplay = types.Format(c.Type, uint64(ci.ZoneMax))
			}
		}
		out = append(out, ci)
	}
	return out, nil
}

// Sizes reports a table's logical and physical byte sizes — the two axes
// of the paper's Figure 5.
func (db *Database) Sizes(table string) (logical, physical int, err error) {
	t := db.lookup(table)
	if t == nil {
		return 0, 0, fmt.Errorf("tde: unknown table %q", table)
	}
	return t.LogicalSize(), t.PhysicalSize(), nil
}

// TableWriteStats is one table's write-overlay accounting: the merge debt
// an operator watches to size compaction.
type TableWriteStats struct {
	Table string
	// BaseRows is the compressed base generation's row count; DeletedBase
	// of those are deleted in the overlay.
	BaseRows, DeletedBase int
	// LiveRows are inserted overlay rows visible at the published epoch.
	// DeadRows were inserted and then deleted/updated but their values are
	// still held for pinned snapshots (GC debt); ReclaimedRows had their
	// values freed by GC but still occupy row-ID slots until compaction.
	LiveRows, DeadRows, ReclaimedRows int
	// Bytes approximates the overlay's heap footprint for this table.
	Bytes int64
}

// WriteStats is a point-in-time snapshot of the MVCC write path: epochs,
// pinned snapshots, per-table overlay debt and the WAL sidecar's size.
type WriteStats struct {
	// PublishedEpoch is what readers see; StagedEpoch (>= published) is
	// the highest commit staged — they differ only while commits are in
	// flight or after a poisoned fsync left staged rows permanently
	// unpublished.
	PublishedEpoch, StagedEpoch uint64
	// LiveEpochs is the number of distinct epochs pinned by in-flight
	// queries and transactions; MinPinnedEpoch is the GC horizon.
	LiveEpochs     int
	MinPinnedEpoch uint64
	// Generation counts base rebuilds (Compact/Save-in-place) since open.
	Generation uint64
	// ActiveTxns is the number of in-flight transactions.
	ActiveTxns int
	// WALBytes is the on-disk size of the WAL sidecar (0 for in-memory
	// databases or when no sidecar exists yet).
	WALBytes int64
	// Poisoned reports a write path disabled by an unknown-outcome
	// failure (see ErrWriterPoisoned).
	Poisoned bool
	// AutoCompact is the background runner's activity.
	AutoCompact AutoCompactStats
	// Tables lists every table with overlay state, sorted by name.
	Tables []TableWriteStats
}

// WriteStats reports the write path's MVCC state: commit epochs, live
// pinned snapshots, per-table overlay/merge debt, and WAL size.
func (db *Database) WriteStats() WriteStats {
	ds := db.dstore.Stats()
	st := WriteStats{
		PublishedEpoch: ds.Published,
		StagedEpoch:    ds.Applied,
		LiveEpochs:     ds.Pins,
		MinPinnedEpoch: ds.MinPinned,
		Generation:     ds.Gen,
		AutoCompact:    db.AutoCompactStats(),
	}
	for _, t := range ds.Tables {
		st.Tables = append(st.Tables, TableWriteStats{
			Table:         t.Table,
			BaseRows:      t.BaseRows,
			DeletedBase:   t.DeletedBase,
			LiveRows:      t.LiveRows,
			DeadRows:      t.DeadRows,
			ReclaimedRows: t.ReclaimedRows,
			Bytes:         t.Bytes,
		})
	}
	db.wmu.Lock()
	st.ActiveTxns = db.activeTx
	st.Poisoned = db.writeErr != nil
	db.wmu.Unlock()
	if db.path != "" {
		if fi, err := os.Stat(wal.Path(db.path)); err == nil {
			st.WALBytes = fi.Size()
		}
	}
	return st
}
