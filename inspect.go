package tde

import (
	"fmt"

	"tde/internal/types"
)

// ColumnInfo is the public view of a stored column: its physical design
// (encoding, width, dictionaries) and the metadata extracted during load
// (Sect. 3.4.2) that drives both tactical optimization and UI choices.
type ColumnInfo struct {
	Name      string
	Type      string
	Collation string

	// Physical design.
	Encoding      string
	WidthBytes    int
	PhysicalBytes int
	LogicalBytes  int
	// DictionarySize is the scalar compression dictionary entry count
	// (0 = not dictionary compressed).
	DictionarySize int
	// HeapBytes / HeapSorted describe a string column's heap.
	HeapBytes  int
	HeapSorted bool

	// Extracted metadata.
	Rows     int
	HasRange bool
	Min, Max int64
	// MinDisplay/MaxDisplay render the range in the column's type (dates
	// as dates, reals as numbers); Min/Max hold the raw ordering values.
	MinDisplay, MaxDisplay string
	Cardinality            int
	CardinalityExact       bool
	HasNulls               bool
	NullsKnown             bool
	Sorted                 bool
	SortedKnown            bool
	Dense                  bool
	Unique                 bool
}

// Columns describes every column of a table.
func (db *Database) Columns(table string) ([]ColumnInfo, error) {
	t := db.lookup(table)
	if t == nil {
		return nil, fmt.Errorf("tde: unknown table %q", table)
	}
	out := make([]ColumnInfo, 0, len(t.Columns))
	for _, c := range t.Columns {
		ci := ColumnInfo{
			Name:           c.Name,
			Type:           c.Type.String(),
			Encoding:       c.Data.Kind().String(),
			WidthBytes:     c.Data.Width(),
			PhysicalBytes:  c.Data.PhysicalSize(),
			LogicalBytes:   c.Data.LogicalSize(),
			DictionarySize: len(c.Dict),
			Rows:           c.Rows(),
		}
		if c.Type == types.String {
			ci.Collation = c.Collation.String()
		}
		if c.Heap != nil {
			ci.HeapBytes = c.Heap.Size()
			ci.HeapSorted = c.Heap.Sorted()
		}
		md := c.Meta
		ci.HasRange = md.HasRange
		ci.Min, ci.Max = md.Min, md.Max
		if md.HasRange && c.Type != types.String {
			ci.MinDisplay = types.Format(c.Type, uint64(md.Min))
			ci.MaxDisplay = types.Format(c.Type, uint64(md.Max))
		}
		ci.Cardinality = md.Cardinality
		ci.CardinalityExact = md.CardinalityExact
		ci.HasNulls, ci.NullsKnown = md.HasNulls, md.NullsKnown
		ci.Sorted, ci.SortedKnown = md.SortedAsc, md.SortedKnown
		ci.Dense, ci.Unique = md.Dense, md.Unique
		out = append(out, ci)
	}
	return out, nil
}

// Sizes reports a table's logical and physical byte sizes — the two axes
// of the paper's Figure 5.
func (db *Database) Sizes(table string) (logical, physical int, err error) {
	t := db.lookup(table)
	if t == nil {
		return 0, 0, fmt.Errorf("tde: unknown table %q", table)
	}
	return t.LogicalSize(), t.PhysicalSize(), nil
}
