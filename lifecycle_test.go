package tde

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"tde/internal/tpch"
)

func lineitemImportOptions() ImportOptions {
	types := []string{"int", "int", "int", "int", "int", "real", "real", "real",
		"str", "str", "date", "date", "date", "str", "str", "str"}
	opt := DefaultImportOptions()
	opt.Schema = make([]string, len(tpch.LineitemSchema))
	for i, n := range tpch.LineitemSchema {
		opt.Schema[i] = n + ":" + types[i]
	}
	opt.HeaderSet, opt.HasHeader = true, false
	return opt
}

// importLineitem loads a small TPC-H lineitem extract through the public
// API — the acceptance workload for query-lifecycle behavior.
func importLineitem(t *testing.T) *Database {
	t.Helper()
	g := tpch.New(0.01, 42)
	var buf bytes.Buffer
	if err := g.WriteLineitem(&buf); err != nil {
		t.Fatal(err)
	}
	db := New()
	if err := db.ImportCSV("lineitem", buf.Bytes(), lineitemImportOptions()); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQueryContextCancel(t *testing.T) {
	db := importLineitem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := db.QueryContext(ctx, "SELECT l_orderkey, SUM(l_quantity) FROM lineitem GROUP BY l_orderkey", QueryOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled query took %v; want prompt return", d)
	}
}

func TestQueryContextTimeout(t *testing.T) {
	db := importLineitem(t)
	_, err := db.QueryContext(context.Background(),
		"SELECT l_comment, COUNT(*) FROM lineitem GROUP BY l_comment ORDER BY l_comment DESC",
		QueryOptions{Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestQueryContextMemoryBudget(t *testing.T) {
	db := importLineitem(t)
	_, err := db.QueryContext(context.Background(),
		"SELECT l_orderkey, l_extendedprice FROM lineitem ORDER BY l_extendedprice",
		QueryOptions{MemoryBudget: 1 << 20})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	// The same query with room to work must succeed.
	res, err := db.QueryContext(context.Background(),
		"SELECT l_orderkey, l_extendedprice FROM lineitem ORDER BY l_extendedprice",
		QueryOptions{MemoryBudget: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("budgeted query returned no rows")
	}
}

func TestImportCSVContextCancel(t *testing.T) {
	g := tpch.New(0.01, 7)
	var buf bytes.Buffer
	if err := g.WriteLineitem(&buf); err != nil {
		t.Fatal(err)
	}
	db := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := db.ImportCSVContext(ctx, "lineitem", buf.Bytes(), lineitemImportOptions(), QueryOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if db.lookup("lineitem") != nil {
		t.Fatal("cancelled import left a partial table behind")
	}
}

func TestInternalErrorContainsPanic(t *testing.T) {
	// A nil table pointer through AddTable provokes an internal fault; the
	// public API must convert it into *InternalError, not crash.
	db := New()
	db.AddTable(nil)
	_, err := db.QueryContext(context.Background(), "SELECT 1 FROM x", QueryOptions{})
	if err == nil {
		t.Skip("planner rejected the statement before reaching the fault")
	}
	// Any error is acceptable as long as nothing panicked; when the panic
	// boundary fired it must carry the InternalError type.
	var ie *InternalError
	if errors.As(err, &ie) && ie.Value == nil {
		t.Fatal("InternalError with no payload")
	}
}
