package tde_test

import (
	"fmt"
	"log"

	"tde"
)

// Example demonstrates the import-query round trip: the engine infers the
// schema, encodes every column, and the string filter runs as an
// invisible join against the region dictionary.
func Example() {
	csv := []byte(`region,amount
west,10
east,25
west,5
east,40
west,15
`)
	db := tde.New()
	if err := db.ImportCSV("sales", csv, tde.DefaultImportOptions()); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query("SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY region")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// east 65
	// west 30
}

// ExampleDatabase_CompressColumn dictionary-compresses a date dimension so
// range filters are evaluated once per distinct date (Sect. 3.4.3 / 4.1).
func ExampleDatabase_CompressColumn() {
	csv := []byte(`d,v
2013-01-01,1
2013-01-02,2
2013-01-01,3
2013-01-03,4
`)
	db := tde.New()
	if err := db.ImportCSV("facts", csv, tde.DefaultImportOptions()); err != nil {
		log.Fatal(err)
	}
	if err := db.CompressColumn("facts", "d"); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query("SELECT COUNT(*) FROM facts WHERE d = DATE '2013-01-01'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Rows[0][0])
	// Output:
	// 2
}
