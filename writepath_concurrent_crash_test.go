package tde

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tde/internal/iofault"
	"tde/internal/wal"
)

// concCrashSeeds sets how many randomized workloads the concurrent-writer
// crash harness replays; CI raises it (go test . -conccrashseeds 128 -race).
var concCrashSeeds = flag.Int("conccrashseeds", 6, "randomized workloads for the concurrent-writer crash harness")

const (
	concWorkers = 4 // concurrent writer goroutines
	concTxns    = 3 // transactions per worker
	concAccts   = 3 // hot rows all workers contend on
	concBase    = 1000
)

// concTxn is one scripted transaction: add delta to a hot account and
// leave a uniquely tagged marker row recording exactly that mutation. The
// marker makes every transaction self-describing, so after an arbitrary
// crash the recovered database itself says which transactions committed —
// and the additive updates commute, so any commit order of any committed
// subset yields one predictable per-account sum (the serial-equivalence
// oracle).
type concTxn struct {
	tag   string
	acct  int
	delta int
}

// makeConcWorkload saves the base database (via the real filesystem) and
// scripts each worker's transactions.
func makeConcWorkload(t *testing.T, rng *rand.Rand, dir string) (string, [][]concTxn) {
	t.Helper()
	var csv strings.Builder
	csv.WriteString("id,val\n")
	for i := 0; i < concAccts; i++ {
		fmt.Fprintf(&csv, "%d,%d\n", i, concBase)
	}
	mem := New()
	if err := mem.ImportCSV("acct", []byte(csv.String()), DefaultImportOptions()); err != nil {
		t.Fatal(err)
	}
	// The marks table needs one row to exist at import; a zero-delta seed
	// row is invisible to the sum oracle.
	if err := mem.ImportCSV("marks", []byte("tag,acct,delta\nseed,0,0\n"), DefaultImportOptions()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "db.tde")
	if err := mem.Save(path); err != nil {
		t.Fatal(err)
	}
	script := make([][]concTxn, concWorkers)
	for w := range script {
		script[w] = make([]concTxn, concTxns)
		for i := range script[w] {
			script[w][i] = concTxn{
				tag:   fmt.Sprintf("w%d.%d", w, i),
				acct:  rng.Intn(concAccts),
				delta: 1 + rng.Intn(50),
			}
		}
	}
	return path, script
}

// runConcTxns runs every worker's script concurrently, retrying commits
// that lose the first-committer race. A worker stops at the first
// non-conflict error (after an injected kill all I/O fails anyway) — so
// its reported commits are always a prefix of its script. Returns the
// tags whose Commit reported success.
func runConcTxns(db *Database, script [][]concTxn) []string {
	var mu sync.Mutex
	var reported []string
	var wg sync.WaitGroup
	for w := range script {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, tc := range script[w] {
				for {
					tx, err := db.Begin()
					if err != nil {
						return
					}
					_, err = tx.Exec(fmt.Sprintf("UPDATE acct SET val = val + %d WHERE id = %d", tc.delta, tc.acct))
					if err == nil {
						_, err = tx.Exec(fmt.Sprintf("INSERT INTO marks VALUES ('%s', %d, %d)", tc.tag, tc.acct, tc.delta))
					}
					if err != nil {
						_ = tx.Rollback()
						return
					}
					err = tx.Commit()
					if err == nil {
						mu.Lock()
						reported = append(reported, tc.tag)
						mu.Unlock()
						break
					}
					if !errors.Is(err, ErrConflict) {
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return reported
}

// checkConcState is the old-or-new-per-transaction oracle: each marker
// tag present in the recovered database means that whole transaction
// committed; each absent tag means none of it did. It asserts
//
//   - no marker is duplicated or diverges from its script entry,
//   - every commit that reported success survived (durability),
//   - per worker the committed tags form a script prefix (a worker only
//     advanced after a successful commit),
//   - every account equals base + the committed deltas (atomicity: a
//     half-applied transaction breaks the equation in either direction).
func checkConcState(t *testing.T, db *Database, script [][]concTxn, reported []string, context string) {
	t.Helper()
	byTag := map[string]concTxn{}
	for _, ws := range script {
		for _, tc := range ws {
			byTag[tc.tag] = tc
		}
	}
	committed := map[string]bool{}
	expect := map[int]int{}
	for _, r := range queryRows(t, db, "SELECT tag, acct, delta FROM marks") {
		tag := r[0]
		if tag == "seed" {
			continue
		}
		tc, ok := byTag[tag]
		if !ok {
			t.Fatalf("%s: unknown marker %q", context, tag)
		}
		if committed[tag] {
			t.Fatalf("%s: marker %q duplicated — transaction applied twice", context, tag)
		}
		committed[tag] = true
		if mustAtoi(t, r[1]) != tc.acct || mustAtoi(t, r[2]) != tc.delta {
			t.Fatalf("%s: marker %q diverged from script: %v, want acct %d delta %d",
				context, tag, r, tc.acct, tc.delta)
		}
		expect[tc.acct] += tc.delta
	}
	for _, tag := range reported {
		if !committed[tag] {
			t.Fatalf("%s: commit %q reported durable but was lost", context, tag)
		}
	}
	for w, ws := range script {
		for i := 1; i < len(ws); i++ {
			if committed[ws[i].tag] && !committed[ws[i-1].tag] {
				t.Fatalf("%s: worker %d committed %q without its predecessor %q",
					context, w, ws[i].tag, ws[i-1].tag)
			}
		}
	}
	for _, r := range queryRows(t, db, "SELECT id, val FROM acct") {
		id, val := mustAtoi(t, r[0]), mustAtoi(t, r[1])
		if want := concBase + expect[id]; val != want {
			t.Fatalf("%s: acct %d = %d, want %d (committed markers say %+d) — a transaction half-applied",
				context, id, val, want, expect[id])
		}
	}
}

// TestConcurrentCrashConsistency is the concurrent-writer kill-point
// harness: N goroutines run conflicting transactions (hot-row additive
// updates + unique marker inserts, retrying lost commit races) while the
// process dies at every numbered I/O operation — a torn final write, then
// total I/O silence. After each kill the database must reopen through the
// real filesystem to a state where every transaction is atomically
// all-there or all-gone, every success-reporting commit survived, and the
// account sums match the committed marker set exactly.
func TestConcurrentCrashConsistency(t *testing.T) {
	for seed := 0; seed < *concCrashSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed) + 424242))
			base, script := makeConcWorkload(t, rng, t.TempDir())

			// Probe run: fault-free but fully concurrent, to count the
			// workload's kill points and sanity-check the oracle.
			probeDir := t.TempDir()
			probePath := filepath.Join(probeDir, "db.tde")
			copyFile(t, base, probePath)
			probe := iofault.NewInjector(nil)
			pdb, _, err := OpenWithOptions(probePath, OpenOptions{FS: probe})
			if err != nil {
				t.Fatal(err)
			}
			reported := runConcTxns(pdb, script)
			if len(reported) != concWorkers*concTxns {
				t.Fatalf("fault-free run committed %d of %d", len(reported), concWorkers*concTxns)
			}
			checkConcState(t, pdb, script, reported, "fault-free")
			n := probe.Ops()
			if n < 10 {
				t.Fatalf("implausibly few kill points (%d): %v", n, probe.Log())
			}

			workDir := t.TempDir()
			work := filepath.Join(workDir, "db.tde")
			for k := 1; k <= n; k++ {
				copyFile(t, base, work)
				_ = os.Remove(wal.Path(work))
				inj := iofault.NewInjector(nil)
				inj.KillAtOp(k, rng.Intn(1<<12))

				var reported []string
				if db, _, err := OpenWithOptions(work, OpenOptions{FS: inj}); err == nil {
					reported = runConcTxns(db, script)
				}

				rdb, err := Open(work)
				if err != nil {
					t.Fatalf("kill at op %d: recovery open failed: %v\nops: %v", k, err, inj.Log())
				}
				checkConcState(t, rdb, script, reported, fmt.Sprintf("kill at op %d", k))
				assertNoTempLitter(t, workDir, fmt.Sprintf("kill at op %d", k))
			}
		})
	}
}
