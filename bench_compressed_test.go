package tde

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"tde/internal/plan"
)

// Compressed-execution benchmarks on a Flights-style table: a sorted
// small-domain column (month — run-length encoded at import), a
// dictionary-compressed small-domain column (carrier) and a plain real
// payload (delay). Each benchmark runs the same query with encoded
// execution forced on and forced off, so the speedup of the encoded
// routines is directly visible in the Compressed*/encoded vs /decoded
// pairs guarded by BENCH_compressed.json.

const benchCompressedRows = 1 << 20

var (
	benchCompressedOnce sync.Once
	benchCompressedDB   *Database
	benchCompressedErr  error
)

func compressedBenchDB(b *testing.B) *Database {
	benchCompressedOnce.Do(func() {
		db := New()
		var sb strings.Builder
		sb.Grow(benchCompressedRows * 12)
		for i := 0; i < benchCompressedRows; i++ {
			// month is sorted (long runs), carrier is a small random-ish
			// domain, delay is a plain payload.
			fmt.Fprintf(&sb, "%d,%d,%d.%02d\n",
				1+i*12/benchCompressedRows, (i*2654435761)%14, i%120-30, i%100)
		}
		opt := DefaultImportOptions()
		opt.Schema = []string{"month:int", "carrier:int", "delay:real"}
		opt.HeaderSet, opt.HasHeader = true, false
		if err := db.ImportCSV("fb", []byte(sb.String()), opt); err != nil {
			benchCompressedErr = err
			return
		}
		if err := db.CompressColumn("fb", "carrier"); err != nil {
			benchCompressedErr = err
			return
		}
		benchCompressedDB = db
	})
	if benchCompressedErr != nil {
		b.Fatal(benchCompressedErr)
	}
	return benchCompressedDB
}

func benchCompressedQuery(b *testing.B, sql string) {
	db := compressedBenchDB(b)
	for _, arm := range []struct {
		name string
		enc  int
	}{
		{"encoded", plan.ForceEncodedExec},
		{"decoded", plan.EncodedOff},
	} {
		b.Run(arm.name, func(b *testing.B) {
			opt := plan.Options{
				ParallelWorkers: -1, NoDictPlan: true, NoIndexPlan: true,
				EncodedExec: arm.enc,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryWithOptions(sql, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// rle-sum: fold SUM/COUNT run-at-a-time over the RLE month column.
func BenchmarkCompressedRLESum(b *testing.B) {
	benchCompressedQuery(b, "SELECT SUM(month), COUNT(month) FROM fb")
}

// dict-filter: evaluate the predicate once per dictionary token instead
// of once per row.
func BenchmarkCompressedDictFilter(b *testing.B) {
	benchCompressedQuery(b, "SELECT SUM(delay) FROM fb WHERE carrier = 7")
}

// token-direct: group by dictionary token via a dense array, no hashing.
func BenchmarkCompressedTokenGroup(b *testing.B) {
	benchCompressedQuery(b, "SELECT carrier, COUNT(*), SUM(delay) FROM fb GROUP BY carrier")
}
