// Package tde is a Go reproduction of the Tableau Data Engine as
// described in "Leveraging Compression in the Tableau Data Engine"
// (Wesley & Terlecki, SIGMOD 2014): a read-only analytic column store
// that operates directly on compressed data.
//
// The public API covers the product surface the paper describes: import
// flat files through the TextScan/FlowTable pipeline (with dynamic
// encoding, heap acceleration, type narrowing and metadata extraction),
// persist single-file databases, inspect per-column encodings and derived
// metadata, dictionary-compress dimension columns, and run analytic SQL
// whose plans use invisible joins, rank joins (IndexedScan) and the
// tactical fetch-join/ordered-aggregation upgrades.
//
// Start with New or Open, then ImportCSV and Query:
//
//	db := tde.New()
//	if err := db.ImportCSVFile("orders", "orders.csv", tde.DefaultImportOptions()); err != nil { ... }
//	res, err := db.Query("SELECT status, COUNT(*) FROM orders GROUP BY status")
package tde

import (
	"fmt"
	"os"

	"tde/internal/exec"
	"tde/internal/plan"
	"tde/internal/sqlparse"
	"tde/internal/storage"
	"tde/internal/textscan"
	"tde/internal/types"
)

// Database is a set of named, read-only tables: an "extract" in Tableau
// terms. It persists as a single file (Sect. 2.3.3).
type Database struct {
	tables []*storage.Table
}

// New returns an empty database.
func New() *Database { return &Database{} }

// Open loads a single-file database written by Save.
func Open(path string) (*Database, error) {
	tables, err := storage.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Database{tables: tables}, nil
}

// Save writes the database as one file, the only on-disk format
// (Sect. 2.3.3: the user must be able to pick the database in a file
// dialog). Column-level compression is what keeps this copy cheap.
func (db *Database) Save(path string) error {
	return storage.WriteFile(path, db.tables)
}

// TableNames lists the tables.
func (db *Database) TableNames() []string {
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	return out
}

// Rows returns a table's row count, or -1 if absent.
func (db *Database) Rows(table string) int {
	t := db.lookup(table)
	if t == nil {
		return -1
	}
	return t.Rows()
}

func (db *Database) lookup(name string) *storage.Table {
	for _, t := range db.tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// ImportOptions control the import pipeline; the fields mirror the
// paper's experimental arms.
type ImportOptions struct {
	// Encode enables dynamic encoding (Sect. 3.2).
	Encode bool
	// Accelerate enables the heap accelerator (Sect. 5.1.4).
	Accelerate bool
	// Parallel parses and encodes columns concurrently (Sect. 5.1.2, 3.3).
	Parallel bool
	// FieldSep overrides separator detection (0 detects).
	FieldSep byte
	// Schema, when non-nil, overrides name/type inference: entries are
	// "name:type" with type one of bool,int,real,date,timestamp,str.
	Schema []string
	// HasHeader overrides header detection when HeaderSet.
	HasHeader bool
	HeaderSet bool
	// Collation applies to string columns: "binary", "ci" or "en".
	Collation string
}

// DefaultImportOptions enables everything, like the shipping product.
func DefaultImportOptions() ImportOptions {
	return ImportOptions{Encode: true, Accelerate: true, Parallel: true}
}

// ImportCSVFile imports a delimited text file as a new table.
func (db *Database) ImportCSVFile(table, path string, opt ImportOptions) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return db.ImportCSV(table, data, opt)
}

// ImportCSV imports delimited text as a new table, running the full
// TextScan => FlowTable pipeline: separator/type/header inference, tight
// buffer-oriented parsing, dynamic encoding, heap sorting, type narrowing
// and metadata extraction.
func (db *Database) ImportCSV(table string, data []byte, opt ImportOptions) error {
	if db.lookup(table) != nil {
		return fmt.Errorf("tde: table %q already exists", table)
	}
	coll, ok := types.ParseCollation(opt.Collation)
	if !ok {
		return fmt.Errorf("tde: unknown collation %q", opt.Collation)
	}
	tsOpt := textscan.Options{
		FieldSep:  opt.FieldSep,
		Parallel:  opt.Parallel,
		HasHeader: opt.HasHeader,
		HeaderSet: opt.HeaderSet,
		Collation: coll,
	}
	if opt.Schema != nil {
		specs, err := parseSchema(opt.Schema)
		if err != nil {
			return err
		}
		tsOpt.Schema = specs
	}
	ts, err := textscan.New(data, tsOpt)
	if err != nil {
		return err
	}
	ft := exec.NewFlowTable(ts, exec.FlowTableConfig{
		Encode:     opt.Encode,
		Accelerate: opt.Accelerate,
		Parallel:   opt.Parallel,
		SortHeaps:  true,
		Narrow:     true,
	})
	bt, err := ft.BuildTable()
	if err != nil {
		return err
	}
	db.tables = append(db.tables, bt.ToTable(table))
	return nil
}

func parseSchema(entries []string) ([]textscan.ColumnSpec, error) {
	specs := make([]textscan.ColumnSpec, 0, len(entries))
	for _, e := range entries {
		var name, tname string
		for i := len(e) - 1; i >= 0; i-- {
			if e[i] == ':' {
				name, tname = e[:i], e[i+1:]
				break
			}
		}
		if name == "" {
			return nil, fmt.Errorf("tde: schema entry %q is not name:type", e)
		}
		t, err := types.ParseType(tname)
		if err != nil {
			return nil, err
		}
		specs = append(specs, textscan.ColumnSpec{Name: name, Type: t})
	}
	return specs, nil
}

// AddTable registers a prebuilt internal table; used by generators and
// tests inside this module.
func (db *Database) AddTable(t *storage.Table) { db.tables = append(db.tables, t) }

// CompressColumn converts an encoded scalar column into a dictionary-
// compressed one (Sect. 3.4.3), enabling invisible joins: filters and
// calculations on the column are pushed down to its (small) domain. Most
// valuable for dimension columns like dates.
func (db *Database) CompressColumn(table, column string) error {
	t := db.lookup(table)
	if t == nil {
		return fmt.Errorf("tde: unknown table %q", table)
	}
	c := t.Column(column)
	if c == nil {
		return fmt.Errorf("tde: table %q has no column %q", table, column)
	}
	return storage.ConvertToDictCompression(c)
}

// Result is a query result with formatted values.
type Result struct {
	Columns []string
	Rows    [][]string
	// Plan describes the strategic plan that produced the result.
	Plan string
}

// Query parses and runs a SQL statement. The supported subset is
// single-table SELECT with WHERE, GROUP BY and ORDER BY, the Tableau
// aggregates (SUM, COUNT, COUNTD, MIN, MAX, AVG, MEDIAN), date parts
// (YEAR, MONTH, DAY, TRUNC_MONTH, TRUNC_YEAR) and string functions
// (UPPER, LOWER, LENGTH, FILE_EXT).
func (db *Database) Query(sql string) (*Result, error) {
	return db.QueryWithOptions(sql, plan.Options{})
}

// QueryWithOptions runs sql with explicit strategic-optimizer options —
// the knob the benchmarks use to force the Fig. 10 plan shapes.
func (db *Database) QueryWithOptions(sql string, opt plan.Options) (*Result, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	op, ex, err := st.Build(db.tables, opt)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, c := range op.Schema() {
		names = append(names, c.Name)
	}
	rows, err := exec.CollectStrings(op)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: names, Rows: rows, Plan: ex.String()}, nil
}

// Explain returns the strategic plan for sql without running it.
func (db *Database) Explain(sql string) (string, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	_, ex, err := st.Build(db.tables, plan.Options{})
	if err != nil {
		return "", err
	}
	return ex.String(), nil
}
