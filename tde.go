// Package tde is a Go reproduction of the Tableau Data Engine as
// described in "Leveraging Compression in the Tableau Data Engine"
// (Wesley & Terlecki, SIGMOD 2014): a read-only analytic column store
// that operates directly on compressed data.
//
// The public API covers the product surface the paper describes: import
// flat files through the TextScan/FlowTable pipeline (with dynamic
// encoding, heap acceleration, type narrowing and metadata extraction),
// persist single-file databases, inspect per-column encodings and derived
// metadata, dictionary-compress dimension columns, and run analytic SQL
// whose plans use invisible joins, rank joins (IndexedScan) and the
// tactical fetch-join/ordered-aggregation upgrades.
//
// Start with New or Open, then ImportCSV and Query:
//
//	db := tde.New()
//	if err := db.ImportCSVFile("orders", "orders.csv", tde.DefaultImportOptions()); err != nil { ... }
//	res, err := db.Query("SELECT status, COUNT(*) FROM orders GROUP BY status")
package tde

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"tde/internal/delta"
	"tde/internal/exec"
	"tde/internal/iofault"
	"tde/internal/plan"
	"tde/internal/spill"
	"tde/internal/sqlparse"
	"tde/internal/storage"
	"tde/internal/textscan"
	"tde/internal/types"
	"tde/internal/wal"
)

// ErrBudgetExceeded is returned (wrapped) when a query or import exceeds
// its memory budget; match it with errors.Is.
var ErrBudgetExceeded = exec.ErrBudgetExceeded

// ErrSpillBudgetExceeded is returned (wrapped) when a spilling query
// exceeds its disk budget as well as its memory budget. It also matches
// ErrBudgetExceeded.
var ErrSpillBudgetExceeded = exec.ErrSpillBudgetExceeded

// ErrCorrupt is matched (errors.Is) by every corruption error an Open
// reports, at any layer — file trailer, column checksum, or structural
// damage inside a column's encoded stream. The concrete error usually
// also carries a *CorruptionReport (errors.As) localizing the damage.
var ErrCorrupt = storage.ErrCorrupt

// ErrReadOnly is returned by mutating operations on a database that was
// opened with OpenOptions.Salvage and lost data to quarantine: persisting
// or extending a partial extract must be an explicit decision (use
// tdecheck -repair, or storage-level APIs) rather than a silent Save.
var ErrReadOnly = errors.New("tde: database was salvaged read-only; damaged columns are quarantined")

// ErrConflict is returned (wrapped) by Tx.Commit when the transaction
// lost a first-committer-wins race: a concurrent transaction that
// committed after this one's snapshot deleted or updated a row this one
// also deletes or updates. The transaction has been rolled back; retry it
// against a fresh snapshot (db.ExecRetry does this with jittered
// backoff). Match with errors.Is.
var ErrConflict = delta.ErrConflict

// ErrWriterPoisoned is matched (errors.Is) by every write-path error
// after a failure whose durable outcome is unknown — typically a commit
// fsync that failed with the commit record possibly on disk. Reads keep
// serving the last published snapshot; Begin, Exec, Commit, Compact and
// Save all fail with this error until the database is reopened, which
// re-derives the truth from the log.
var ErrWriterPoisoned = errors.New("tde: write path poisoned, reopen to recover")

// ErrClosed is returned by operations on a database whose Close has run.
var ErrClosed = errors.New("tde: database closed")

// CorruptionReport localizes damage found while opening a database:
// one entry per damaged table/column with byte offsets. It is both the
// error strict opens return and the report salvage opens produce.
type CorruptionReport = storage.CorruptionReport

// CorruptionEntry is one damaged region in a CorruptionReport.
type CorruptionEntry = storage.CorruptionEntry

// UnsupportedVersionError reports a database written by a newer format
// version than this build understands; the file is likely intact.
type UnsupportedVersionError = storage.UnsupportedVersionError

// InternalError reports a panic recovered at an engine entry point
// (Query, ImportCSV, Open): an engine bug or corrupt data that slipped
// past validation, contained so the process survives.
type InternalError struct {
	// Op names the operator (or phase) that was running when the engine
	// panicked.
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *InternalError) Error() string {
	op := e.Op
	if op == "" {
		op = "engine"
	}
	return fmt.Sprintf("tde: internal error in %s: %v", op, e.Value)
}

// containPanic recovers an internal panic into *InternalError. Deferred at
// every public entry point that runs engine code.
func containPanic(qc *exec.QueryCtx, err *error) {
	if r := recover(); r != nil {
		*err = &InternalError{Op: qc.Op(), Value: r, Stack: debug.Stack()}
	}
}

// Database is a set of named tables: an "extract" in Tableau terms. It
// persists as a single file (Sect. 2.3.3). The compressed base tables are
// immutable; INSERT, UPDATE and DELETE land in an uncompressed write
// overlay (internal/delta), made durable by a write-ahead log sidecar
// (internal/wal) and folded back into compressed extents by Compact.
type Database struct {
	// mu guards tables against the swap Compact performs and the append
	// imports perform; queries snapshot the slice under it.
	mu     sync.RWMutex
	tables []*storage.Table

	// path and fs bind a file-backed database to its on-disk image; path
	// is "" for in-memory databases, which skip the WAL entirely.
	path string
	fs   iofault.FS

	// dstore is the write overlay; binding identifies the exact base image
	// the WAL sidecar belongs to (a sidecar bound to a different image is
	// stale and ignored).
	dstore  *delta.Store
	binding wal.Binding

	// wmu guards the writer bookkeeping below and the commit critical
	// section (conflict validation + WAL append — both memory-speed; the
	// commit fsync happens outside it, shared via group commit). Writers
	// are otherwise concurrent: transactions buffer operations privately
	// against pinned epoch snapshots. Readers never take wmu.
	wmu      sync.Mutex
	wlog     *wal.Log
	walState walState
	walClean int64
	nextTx   uint64
	// writeErr poisons the write path after a failure whose durable
	// outcome is unknown (e.g. a commit-record fsync error): reads keep
	// working on the pre-failure snapshot, writes fail with
	// ErrWriterPoisoned until a reopen re-derives the truth from disk.
	writeErr error
	// txs registers in-flight transactions so Close can abort them;
	// activeTx counts them for quiesce (Compact/Save drain writers).
	txs      map[*Tx]bool
	activeTx int
	// admitWake is closed and cleared whenever admission state changes
	// (a transaction finished, quiesce ended, backpressure lifted); nil
	// when nobody waits. quiescing closes admission while a merge drains
	// and swaps; closed ends the write path permanently.
	admitWake chan struct{}
	quiescing bool
	closed    bool
	// queries registers in-flight reads' cancel funcs so Close can abort
	// them with a typed ErrClosed cause instead of leaving them running
	// against a closed database (guarded by wmu like txs).
	queries map[*queryReg]bool
	// compactor is the background auto-compaction runner, nil unless
	// EnableAutoCompact armed it.
	compactor *autoCompactor

	// persisted marks the tables present in the on-disk base image. DML on
	// a file-backed database is limited to these: WAL replay must be able
	// to find the table on reopen.
	persisted map[string]bool

	// salvaged is the corruption report of a Salvage open that lost data;
	// non-nil makes the database read-only (see ErrReadOnly).
	salvaged *CorruptionReport
}

// New returns an empty in-memory database.
func New() *Database {
	return &Database{fs: iofault.OS, dstore: delta.NewStore(nil), nextTx: 1}
}

// OpenOptions control how Open treats a damaged database file.
type OpenOptions struct {
	// Verify walks every value of every column at open (beyond the
	// checksum and structural validation strict opens always perform), so
	// even damage on an adversarially re-checksummed file surfaces at
	// open rather than at query time. It costs a full scan.
	Verify bool
	// Salvage opens a damaged file anyway: columns and tables that fail
	// their checksums are quarantined (detailed in the returned
	// CorruptionReport) and the intact remainder is opened read-only.
	Salvage bool
	// FS routes the database's file I/O — the base image read, the WAL
	// sidecar, and every write Compact and committed transactions perform.
	// nil means the real filesystem; tests inject disk faults here.
	FS iofault.FS
}

// Open loads a single-file database written by Save. Corrupt or truncated
// files return an error — never a panic: the image is checksummed (per
// column in format v2) and structurally validated, and any residual
// failure is contained as an *InternalError. The error matches ErrCorrupt
// and carries a *CorruptionReport localizing the damage; to open the
// intact remainder of a damaged file, use OpenWithOptions with Salvage.
func Open(path string) (*Database, error) {
	db, _, err := OpenWithOptions(path, OpenOptions{})
	return db, err
}

// OpenWithOptions loads a single-file database under opt. The report is
// non-nil exactly when damage was found: without Salvage the open also
// fails with that report as the error; with Salvage the database contains
// every intact table and column, is marked read-only, and err is nil.
func OpenWithOptions(path string, opt OpenOptions) (db *Database, rep *CorruptionReport, err error) {
	defer containPanic(nil, &err)
	fs := opt.FS
	if fs == nil {
		fs = iofault.OS
	}
	// Best-effort orphan sweeps: spill temp dirs abandoned by a crashed
	// process (recognizable by the tde-spill- prefix) are removed once
	// they are old enough to be surely dead, and so are the WAL/save temp
	// files a crashed commit or merge left next to the database.
	_, _ = spill.Sweep(os.TempDir(), time.Hour)
	_, _ = wal.SweepTemps(filepath.Dir(path), time.Hour)
	raw, err := fs.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	tables, rep, err := storage.ReadWithOptions(raw, storage.ReadOptions{
		Salvage:    opt.Salvage,
		DeepVerify: opt.Verify,
	})
	if err != nil {
		return nil, rep, err
	}
	db = &Database{
		tables:    tables,
		path:      path,
		fs:        fs,
		dstore:    delta.NewStore(tables),
		binding:   wal.Bind(raw),
		nextTx:    1,
		persisted: map[string]bool{},
	}
	for _, t := range tables {
		db.persisted[t.Name] = true
	}
	if rep != nil && len(rep.Entries) > 0 {
		db.salvaged = rep
	}
	// Crash recovery: replay the WAL sidecar's committed transactions into
	// the write overlay, so the reopened database carries exactly the
	// transactions whose commit records reached disk.
	if err := db.attachWAL(); err != nil {
		return nil, rep, err
	}
	return db, rep, nil
}

// Corruption returns the report of the salvage open that produced this
// database, or nil if it was opened clean.
func (db *Database) Corruption() *CorruptionReport { return db.salvaged }

// ReadOnly reports whether the database refuses mutation because a
// salvage open quarantined data.
func (db *Database) ReadOnly() bool { return db.salvaged != nil }

// Save writes the database as one file, the only on-disk format
// (Sect. 2.3.3: the user must be able to pick the database in a file
// dialog). Column-level compression is what keeps this copy cheap. Any
// uncompacted write-overlay rows are merged into the written image, so a
// saved file always round-trips the visible data.
//
// The write is crash-safe: data goes to a temporary file in the target
// directory which is fsynced and atomically renamed over the destination,
// so a crash mid-save never corrupts an existing extract. Saving a
// file-backed database over its own path is a Compact.
func (db *Database) Save(path string) (err error) {
	if db.salvaged != nil {
		return fmt.Errorf("%w: %d damaged regions", ErrReadOnly, len(db.salvaged.Entries))
	}
	defer containPanic(nil, &err)
	// Drain in-flight writers: the merged image must be a committed-only
	// snapshot, and saving over our own path swaps the base under the
	// overlay.
	release, err := db.quiesce(context.Background())
	if err != nil {
		return err
	}
	defer release()
	if db.writeErr != nil {
		return db.poisonedLocked()
	}
	merged, _, err := db.materializeLocked(context.Background(), QueryOptions{})
	if err != nil {
		return err
	}
	if path == db.path && db.path != "" {
		return db.swapBaseLocked(merged)
	}
	return storage.WriteFile(path, merged)
}

// Close shuts the database down: background auto-compaction stops,
// in-flight transactions are aborted (their epochs released, their later
// Exec/Commit calls failing), waiting BeginContext calls return ErrClosed,
// in-flight queries are cancelled with an error matching ErrClosed (their
// epoch pins released on the way out — never leaked), new QueryContext
// calls fail with ErrClosed, and the WAL append handle is closed.
// Everything committed before Close is durable and replayed on the next
// Open. Close is idempotent.
func (db *Database) Close() error {
	db.DisableAutoCompact()
	db.wmu.Lock()
	if db.closed {
		db.wmu.Unlock()
		return nil
	}
	db.closed = true
	txs := make([]*Tx, 0, len(db.txs))
	for tx := range db.txs {
		txs = append(txs, tx)
	}
	reads := make([]*queryReg, 0, len(db.queries))
	for q := range db.queries {
		reads = append(reads, q)
	}
	db.wakeAdmissionLocked()
	db.wmu.Unlock()
	for _, tx := range txs {
		tx.forceAbort()
	}
	for _, q := range reads {
		q.cancel(errQueryAborted)
	}
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if db.wlog != nil {
		err := db.wlog.Close()
		db.wlog = nil
		return err
	}
	return nil
}

// TableNames lists the tables.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	return out
}

// Rows returns a table's visible row count (base rows minus deletions
// plus uncompacted insertions), or -1 if absent.
func (db *Database) Rows(table string) int {
	t := db.lookup(table)
	if t == nil {
		return -1
	}
	if v := db.dstore.View(t); v != nil {
		return v.VisibleRows()
	}
	return t.Rows()
}

func (db *Database) lookup(name string) *storage.Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// queryReg is one in-flight query's registration: the cancel func Close
// uses to abort it with a typed cause.
type queryReg struct {
	cancel context.CancelCauseFunc
}

// beginQuery admits one query against the close lifecycle: it fails with
// ErrClosed once Close has run, and otherwise returns a derived context
// Close can cancel (with a cause matching ErrClosed) plus the matching
// deregistration func. The registration uses wmu — the same lock that
// guards closed — so a query can never slip past a concurrent Close
// unobserved.
func (db *Database) beginQuery(ctx context.Context) (context.Context, func(), error) {
	if ctx == nil {
		ctx = context.Background()
	}
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if db.closed {
		return nil, nil, ErrClosed
	}
	qctx, cancel := context.WithCancelCause(ctx)
	reg := &queryReg{cancel: cancel}
	if db.queries == nil {
		db.queries = map[*queryReg]bool{}
	}
	db.queries[reg] = true
	done := func() {
		db.wmu.Lock()
		delete(db.queries, reg)
		db.wmu.Unlock()
		cancel(nil) // release the derived context's resources
	}
	return qctx, done, nil
}

// snapshot cuts one consistent read snapshot: the table set and, for each
// table with an overlay, a frozen delta view at the current published
// epoch. A commit landing mid-query never changes what the query sees.
// db.mu is held across both reads so a base swap (Compact) can never
// interleave between the table set and the overlay views — the swap takes
// db.mu exclusively around both.
func (db *Database) snapshot() ([]*storage.Table, map[string]*delta.View) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables, db.dstore.Views(db.tables)
}

// pinnedSnapshot is snapshot plus an epoch reference: the returned views
// are cut exactly at the pinned epoch, and until release is called the
// epoch stays live — garbage collection will not reclaim rows it can see,
// and WriteStats reports it pinned. Queries hold the pin for their whole
// execution, so "multiple live read epochs" is literal: each in-flight
// query (and transaction) holds its own.
func (db *Database) pinnedSnapshot() (tables []*storage.Table, views map[string]*delta.View, release func()) {
	for {
		epoch, _ := db.dstore.Pin()
		db.mu.RLock()
		tables = db.tables
		v, err := db.dstore.ViewsAt(tables, epoch)
		db.mu.RUnlock()
		if err == nil {
			return tables, v, func() { db.dstore.Unpin(epoch) }
		}
		// A compaction swapped the base between Pin and ViewsAt, making the
		// pinned epoch unservable; re-pin against the new generation.
		db.dstore.Unpin(epoch)
	}
}

// ImportOptions control the import pipeline; the fields mirror the
// paper's experimental arms.
type ImportOptions struct {
	// Encode enables dynamic encoding (Sect. 3.2).
	Encode bool
	// Accelerate enables the heap accelerator (Sect. 5.1.4).
	Accelerate bool
	// Parallel parses and encodes columns concurrently (Sect. 5.1.2, 3.3).
	Parallel bool
	// FieldSep overrides separator detection (0 detects).
	FieldSep byte
	// Schema, when non-nil, overrides name/type inference: entries are
	// "name:type" with type one of bool,int,real,date,timestamp,str.
	Schema []string
	// HasHeader overrides header detection when HeaderSet.
	HasHeader bool
	HeaderSet bool
	// Collation applies to string columns: "binary", "ci" or "en".
	Collation string
}

// DefaultImportOptions enables everything, like the shipping product.
func DefaultImportOptions() ImportOptions {
	return ImportOptions{Encode: true, Accelerate: true, Parallel: true}
}

// ImportCSVFile imports a delimited text file as a new table.
func (db *Database) ImportCSVFile(table, path string, opt ImportOptions) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return db.ImportCSV(table, data, opt)
}

// ImportCSV imports delimited text as a new table, running the full
// TextScan => FlowTable pipeline: separator/type/header inference, tight
// buffer-oriented parsing, dynamic encoding, heap sorting, type narrowing
// and metadata extraction.
func (db *Database) ImportCSV(table string, data []byte, opt ImportOptions) error {
	return db.ImportCSVContext(context.Background(), table, data, opt, QueryOptions{})
}

// ImportCSVContext is ImportCSV under a cancellable context and resource
// limits: qopt.Timeout bounds wall time, qopt.MemoryBudget bounds the
// FlowTable's materialized size, and internal panics are contained as
// *InternalError.
func (db *Database) ImportCSVContext(ctx context.Context, table string, data []byte,
	opt ImportOptions, qopt QueryOptions) (err error) {
	if db.salvaged != nil {
		return ErrReadOnly
	}
	if db.lookup(table) != nil {
		return fmt.Errorf("tde: table %q already exists", table)
	}
	coll, ok := types.ParseCollation(opt.Collation)
	if !ok {
		return fmt.Errorf("tde: unknown collation %q", opt.Collation)
	}
	tsOpt := textscan.Options{
		FieldSep:  opt.FieldSep,
		Parallel:  opt.Parallel,
		HasHeader: opt.HasHeader,
		HeaderSet: opt.HeaderSet,
		Collation: coll,
	}
	if opt.Schema != nil {
		specs, err := parseSchema(opt.Schema)
		if err != nil {
			return err
		}
		tsOpt.Schema = specs
	}
	ts, err := textscan.New(data, tsOpt)
	if err != nil {
		return err
	}
	ft := exec.NewFlowTable(ts, exec.FlowTableConfig{
		Encode:     opt.Encode,
		Accelerate: opt.Accelerate,
		Parallel:   opt.Parallel,
		SortHeaps:  true,
		Narrow:     true,
	})
	qc, cancel := qopt.newQueryCtx(ctx)
	defer cancel()
	defer qc.DetachPool()
	defer qc.CleanupSpill()
	defer containPanic(qc, &err)
	bt, err := ft.BuildTable(qc)
	if err != nil {
		return err
	}
	t := bt.ToTable(table)
	db.mu.Lock()
	db.tables = append(db.tables, t)
	db.mu.Unlock()
	db.dstore.Register(t)
	return nil
}

func parseSchema(entries []string) ([]textscan.ColumnSpec, error) {
	specs := make([]textscan.ColumnSpec, 0, len(entries))
	for _, e := range entries {
		var name, tname string
		for i := len(e) - 1; i >= 0; i-- {
			if e[i] == ':' {
				name, tname = e[:i], e[i+1:]
				break
			}
		}
		if name == "" {
			return nil, fmt.Errorf("tde: schema entry %q is not name:type", e)
		}
		t, err := types.ParseType(tname)
		if err != nil {
			return nil, err
		}
		specs = append(specs, textscan.ColumnSpec{Name: name, Type: t})
	}
	return specs, nil
}

// AddTable registers a prebuilt internal table; used by generators and
// tests inside this module.
func (db *Database) AddTable(t *storage.Table) {
	db.mu.Lock()
	db.tables = append(db.tables, t)
	db.mu.Unlock()
	if t != nil {
		db.dstore.Register(t)
	}
}

// CompressColumn converts an encoded scalar column into a dictionary-
// compressed one (Sect. 3.4.3), enabling invisible joins: filters and
// calculations on the column are pushed down to its (small) domain. Most
// valuable for dimension columns like dates.
func (db *Database) CompressColumn(table, column string) error {
	if db.salvaged != nil {
		return ErrReadOnly
	}
	t := db.lookup(table)
	if t == nil {
		return fmt.Errorf("tde: unknown table %q", table)
	}
	c := t.Column(column)
	if c == nil {
		return fmt.Errorf("tde: table %q has no column %q", table, column)
	}
	return storage.ConvertToDictCompression(c)
}

// Result is a query result with formatted values.
type Result struct {
	Columns []string
	Rows    [][]string
	// Plan describes the strategic plan that produced the result; when the
	// query degraded to disk it is suffixed with a per-operator spill
	// summary ("... => Spill[#4 HashJoin spills=1 parts=8 ...]").
	Plan string

	stats QueryStats
	tree  *exec.PlanNode
}

// Stats returns the query's resource-use counters, snapshotted after the
// last operator (exchange workers included) finished.
func (r *Result) Stats() QueryStats { return r.stats }

// QueryStats are the resource-use counters of one finished query. The
// whole struct is JSON-serializable.
type QueryStats struct {
	// MemoryPeak is the high-water mark of accounted bytes in memory.
	MemoryPeak int64 `json:"memory_peak"`
	// SpillPeak is the high-water mark of spill bytes on disk (0 when the
	// query never spilled).
	SpillPeak int64 `json:"spill_peak"`
	// Operators holds one runtime-counter entry per planned operator, in
	// plan pre-order, keyed by the stable operator ID — two operators of
	// the same kind report separately.
	Operators []OperatorStats `json:"operators"`
}

// OperatorStats is one operator's runtime counters (see
// exec.OpStatsSnapshot for field semantics).
type OperatorStats = exec.OpStatsSnapshot

// Spilled reports whether any operator of the query spilled to disk.
func (s QueryStats) Spilled() bool {
	for i := range s.Operators {
		if s.Operators[i].Spill != nil && s.Operators[i].Spill.Spills > 0 {
			return true
		}
	}
	return false
}

// QueryOptions bound a query's (or import's) resource use. The zero value
// means no timeout and no memory budget.
type QueryOptions struct {
	// Timeout cancels the query after the given wall-clock duration
	// (0 = none); the query returns context.DeadlineExceeded.
	Timeout time.Duration
	// MemoryBudget caps the bytes the query's stop-and-go operators may
	// materialize (0 = unlimited); exceeding it returns an error matching
	// ErrBudgetExceeded instead of exhausting the process.
	MemoryBudget int64
	// Plan carries explicit strategic-optimizer options — the knob the
	// benchmarks use to force the Fig. 10 plan shapes.
	Plan plan.Options
	// SpillBudget caps the bytes a memory-pressured query may stage in
	// compressed spill files on disk (0 disables spilling: exceeding
	// MemoryBudget fails fast). With a budget set, grouped aggregation,
	// hash joins and sorts degrade gracefully — partitioning state to disk
	// and completing with bounded memory — instead of failing.
	SpillBudget int64
	// SpillDir is the base directory for the per-query spill temp dir
	// ("" = os.TempDir()).
	SpillDir string
	// SpillFS routes spill file I/O; nil means the real filesystem. Tests
	// inject disk faults here.
	SpillFS iofault.FS
	// Governor, when non-nil, joins the query to a process-wide resource
	// governor: memory and spill charges land in its shared pool as well
	// as the per-query accountant, and scans read through its shared
	// decode cache. Multi-session servers set it on every query; nil
	// keeps per-query accounting only.
	Governor *Governor
}

// newQueryCtx builds the lifecycle handle for one query under o.
func (o QueryOptions) newQueryCtx(ctx context.Context) (*exec.QueryCtx, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := context.CancelFunc(func() {})
	if o.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
	}
	qc := exec.NewQueryCtxSpill(ctx, o.MemoryBudget, exec.SpillConfig{
		Budget: o.SpillBudget,
		Dir:    o.SpillDir,
		FS:     o.SpillFS,
	})
	o.Governor.attach(qc)
	return qc, cancel
}

// Query parses and runs a SQL statement. The supported subset is
// single-table SELECT with WHERE, GROUP BY and ORDER BY, the Tableau
// aggregates (SUM, COUNT, COUNTD, MIN, MAX, AVG, MEDIAN), date parts
// (YEAR, MONTH, DAY, TRUNC_MONTH, TRUNC_YEAR) and string functions
// (UPPER, LOWER, LENGTH, FILE_EXT).
func (db *Database) Query(sql string) (*Result, error) {
	return db.QueryContext(context.Background(), sql, QueryOptions{})
}

// QueryWithOptions runs sql with explicit strategic-optimizer options —
// the knob the benchmarks use to force the Fig. 10 plan shapes.
func (db *Database) QueryWithOptions(sql string, opt plan.Options) (*Result, error) {
	return db.QueryContext(context.Background(), sql, QueryOptions{Plan: opt})
}

// QueryContext runs sql under a cancellable context and explicit resource
// limits: cancelling ctx (or exceeding opt.Timeout) interrupts the query
// within one execution block and returns the context's error; exceeding
// opt.MemoryBudget returns an error matching ErrBudgetExceeded; an
// internal panic is contained as *InternalError naming the failing
// operator.
func (db *Database) QueryContext(ctx context.Context, sql string, opt QueryOptions) (res *Result, err error) {
	// Register against the close lifecycle first: a closed database fails
	// with ErrClosed, and a Close racing this query can cancel it.
	qctx, done, err := db.beginQuery(ctx)
	if err != nil {
		return nil, err
	}
	defer done()
	// The panic boundary wraps planning as well as execution: a malformed
	// catalog (e.g. a nil table) must surface as *InternalError, not crash.
	qc, cancel := opt.newQueryCtx(qctx)
	defer cancel()
	// Any residual pooled charges (possible only after a contained panic)
	// must return to the shared governor when the query dies.
	defer qc.DetachPool()
	// Spill files must not outlive the query on any exit path — success,
	// error, cancellation or contained panic.
	defer qc.CleanupSpill()
	defer containPanic(qc, &err)
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	tables, views, release := db.pinnedSnapshot()
	defer release()
	op, ex, err := st.BuildViews(tables, views, opt.Plan)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, c := range op.Schema() {
		names = append(names, c.Name)
	}
	rows, err := exec.CollectStringsCtx(qc, op)
	if err != nil {
		// Prefer the root cancellation cause over operator wrapping so
		// callers can match context.Canceled / DeadlineExceeded — or, for
		// a query aborted by Close, ErrClosed — directly.
		if ctxErr := qc.Err(); ctxErr != nil {
			if cause := context.Cause(qc.Context()); cause != nil {
				ctxErr = cause
			}
			if !errors.Is(err, ctxErr) {
				return nil, fmt.Errorf("%w (%v)", ctxErr, err)
			}
		}
		return nil, err
	}
	// CollectStringsCtx has closed the whole tree (exchange workers
	// joined), so the operator counters snapshotted here are final.
	planStr := ex.String()
	if s := qc.SpillSummary(); s != "" {
		planStr += " => " + s
	}
	return &Result{Columns: names, Rows: rows, Plan: planStr, tree: ex.Tree,
		stats: QueryStats{
			MemoryPeak: qc.Peak(),
			SpillPeak:  qc.SpillPeak(),
			Operators:  qc.OpSnapshots(ex.Tree),
		}}, nil
}

// Explain returns the strategic plan for sql without running it.
func (db *Database) Explain(sql string) (string, error) {
	return db.ExplainWithOptions(sql, plan.Options{})
}

// ExplainWithOptions returns the strategic plan for sql under explicit
// optimizer options, so plan shapes that depend on them (worker counts,
// routing) can be inspected without running the query.
func (db *Database) ExplainWithOptions(sql string, opt plan.Options) (string, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	tables, views := db.snapshot()
	_, ex, err := st.BuildViews(tables, views, opt)
	if err != nil {
		return "", err
	}
	return ex.String(), nil
}
