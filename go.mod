module tde

go 1.22
