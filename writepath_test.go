package tde

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"tde/internal/wal"
)

// saveOrders writes the orders fixture to a file-backed database and
// reopens it, returning the open database and its path.
func saveOrdersFile(t *testing.T) (*Database, string) {
	t.Helper()
	mem := importOrders(t)
	path := filepath.Join(t.TempDir(), "orders.tde")
	if err := mem.Save(path); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return db, path
}

func queryRows(t *testing.T, db *Database, sql string) [][]string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res.Rows
}

func TestExecInsert(t *testing.T) {
	db, _ := saveOrdersFile(t)
	n, err := db.Exec("INSERT INTO orders VALUES ('open', 99, DATE '2014-04-01')")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("affected %d", n)
	}
	if got := db.Rows("orders"); got != 6 {
		t.Fatalf("rows %d", got)
	}
	rows := queryRows(t, db, "SELECT status, SUM(amount) FROM orders GROUP BY status ORDER BY status")
	want := [][]string{{"closed", "65"}, {"open", "129"}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("got %v want %v", rows, want)
	}
}

func TestExecInsertColumnListAndNull(t *testing.T) {
	db := importOrders(t)
	if _, err := db.Exec("INSERT INTO orders (amount, status) VALUES (7, 'open'), (NULL, 'ghost')"); err != nil {
		t.Fatal(err)
	}
	rows := queryRows(t, db, "SELECT COUNT(*) FROM orders WHERE when IS NULL")
	if rows[0][0] != "2" {
		t.Fatalf("null dates %v", rows)
	}
	rows = queryRows(t, db, "SELECT COUNT(*) FROM orders WHERE amount IS NULL")
	if rows[0][0] != "1" {
		t.Fatalf("null amounts %v", rows)
	}
}

func TestExecUpdateAndDelete(t *testing.T) {
	db, _ := saveOrdersFile(t)
	n, err := db.Exec("UPDATE orders SET amount = amount + 100 WHERE status = 'open'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("updated %d", n)
	}
	rows := queryRows(t, db, "SELECT SUM(amount) FROM orders")
	if rows[0][0] != "395" {
		t.Fatalf("sum after update %v", rows)
	}
	n, err = db.Exec("DELETE FROM orders WHERE amount > 100")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("deleted %d", n)
	}
	if got := db.Rows("orders"); got != 2 {
		t.Fatalf("rows %d", got)
	}
	rows = queryRows(t, db, "SELECT status, amount FROM orders ORDER BY amount")
	want := [][]string{{"closed", "25"}, {"closed", "40"}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("got %v want %v", rows, want)
	}
}

func TestUpdateStringAndStringFunc(t *testing.T) {
	db := importOrders(t)
	if _, err := db.Exec("UPDATE orders SET status = UPPER(status) WHERE amount >= 25"); err != nil {
		t.Fatal(err)
	}
	rows := queryRows(t, db, "SELECT status, COUNT(*) FROM orders GROUP BY status ORDER BY status")
	want := [][]string{{"CLOSED", "2"}, {"open", "3"}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("got %v want %v", rows, want)
	}
	if _, err := db.Exec("UPDATE orders SET status = 'won' WHERE status = 'CLOSED'"); err != nil {
		t.Fatal(err)
	}
	rows = queryRows(t, db, "SELECT COUNT(*) FROM orders WHERE status = 'won'")
	if rows[0][0] != "2" {
		t.Fatalf("constant string update %v", rows)
	}
}

func TestTransactionIsolationAndRollback(t *testing.T) {
	db, _ := saveOrdersFile(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO orders VALUES ('open', 1, DATE '2014-05-01')"); err != nil {
		t.Fatal(err)
	}
	// Uncommitted writes are invisible to readers.
	if rows := queryRows(t, db, "SELECT COUNT(*) FROM orders"); rows[0][0] != "5" {
		t.Fatalf("reader sees uncommitted insert: %v", rows)
	}
	// ... but visible to the transaction's own later statements.
	if n, err := tx.Exec("DELETE FROM orders WHERE amount = 1"); err != nil || n != 1 {
		t.Fatalf("own-write visibility: n=%d err=%v", n, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if rows := queryRows(t, db, "SELECT COUNT(*) FROM orders"); rows[0][0] != "5" {
		t.Fatalf("after commit: %v", rows)
	}

	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("DELETE FROM orders"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := db.Rows("orders"); got != 5 {
		t.Fatalf("rollback lost rows: %d", got)
	}
	// The writer slot is free again and the abandoned records do not
	// poison the log.
	if _, err := db.Exec("INSERT INTO orders VALUES ('open', 2, DATE '2014-05-02')"); err != nil {
		t.Fatal(err)
	}
	if got := db.Rows("orders"); got != 6 {
		t.Fatalf("after rollback+insert: %d", got)
	}
}

func TestRecoveryAcrossReopen(t *testing.T) {
	db, path := saveOrdersFile(t)
	if _, err := db.Exec("INSERT INTO orders VALUES ('open', 99, DATE '2014-04-01')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE orders SET amount = 0 WHERE status = 'closed'"); err != nil {
		t.Fatal(err)
	}
	want := queryRows(t, db, "SELECT status, amount FROM orders ORDER BY amount, status")

	// Reopen from disk: the base image is untouched, the WAL replays.
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got := queryRows(t, db2, "SELECT status, amount FROM orders ORDER BY amount, status")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v want %v", got, want)
	}

	// Compact folds the overlay into the base and retires the WAL;
	// another reopen sees identical data with no sidecar.
	if err := db2.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(wal.Path(path)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("wal sidecar survived compact: %v", err)
	}
	db3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got = queryRows(t, db3, "SELECT status, amount FROM orders ORDER BY amount, status")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compact %v want %v", got, want)
	}
}

// TestCompactPreservesResults is the write-path difftest: a randomized
// DML workload queried through base+delta must return exactly the same
// results after Compact re-encodes the overlay into compressed extents,
// and again after a reopen from the compacted file.
func TestCompactPreservesResults(t *testing.T) {
	queries := []string{
		"SELECT status, SUM(amount), COUNT(*) FROM orders GROUP BY status ORDER BY status",
		"SELECT status, amount FROM orders ORDER BY amount, status",
		"SELECT COUNT(*) FROM orders WHERE amount > 20",
		"SELECT MIN(amount), MAX(amount) FROM orders",
		"SELECT COUNT(*) FROM orders WHERE when IS NULL",
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db, path := saveOrdersFile(t)
		statuses := []string{"open", "closed", "hold", "lost"}
		for i := 0; i < 30; i++ {
			var err error
			switch rng.Intn(4) {
			case 0, 1:
				_, err = db.Exec(fmt.Sprintf("INSERT INTO orders VALUES ('%s', %d, DATE '2014-0%d-1%d')",
					statuses[rng.Intn(len(statuses))], rng.Intn(200), 1+rng.Intn(9), rng.Intn(9)))
			case 2:
				_, err = db.Exec(fmt.Sprintf("UPDATE orders SET amount = amount + %d WHERE amount < %d",
					rng.Intn(20), rng.Intn(120)))
			case 3:
				_, err = db.Exec(fmt.Sprintf("DELETE FROM orders WHERE amount > %d", 60+rng.Intn(140)))
			}
			if err != nil {
				t.Fatalf("seed %d op %d: %v", seed, i, err)
			}
		}
		before := make([][][]string, len(queries))
		for qi, q := range queries {
			before[qi] = queryRows(t, db, q)
		}
		if err := db.Compact(); err != nil {
			t.Fatalf("seed %d compact: %v", seed, err)
		}
		for qi, q := range queries {
			if got := queryRows(t, db, q); !reflect.DeepEqual(got, before[qi]) {
				t.Fatalf("seed %d query %q changed across compact:\n  before %v\n  after  %v",
					seed, q, before[qi], got)
			}
		}
		db2, err := Open(path)
		if err != nil {
			t.Fatalf("seed %d reopen: %v", seed, err)
		}
		for qi, q := range queries {
			if got := queryRows(t, db2, q); !reflect.DeepEqual(got, before[qi]) {
				t.Fatalf("seed %d query %q changed across compact+reopen:\n  before %v\n  after  %v",
					seed, q, before[qi], got)
			}
		}
	}
}

func TestSalvagedDatabaseRefusesWrites(t *testing.T) {
	db, path := saveOrdersFile(t)
	if _, err := db.Exec("INSERT INTO orders VALUES ('open', 1, DATE '2014-04-01')"); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the base image's column payload region so a
	// column checksum fails and salvage quarantines it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	sdb, rep, err := OpenWithOptions(path, OpenOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(rep.Entries) == 0 {
		t.Skip("corruption landed somewhere not quarantinable")
	}
	if !sdb.ReadOnly() {
		t.Fatal("salvaged database is not read-only")
	}
	if _, err := sdb.Begin(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Begin: %v", err)
	}
	if _, err := sdb.Exec("DELETE FROM orders"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Exec: %v", err)
	}
	if err := sdb.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Compact: %v", err)
	}
	if err := sdb.Save(path); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Save: %v", err)
	}
}

func TestUnpersistedTableRefusesDML(t *testing.T) {
	db, path := saveOrdersFile(t)
	if err := db.ImportCSV("extra", []byte("k,v\na,1\nb,2\n"), DefaultImportOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM extra"); err == nil {
		t.Fatal("DML on unpersisted table succeeded; its WAL records could never replay")
	}
	// Saving over the database path persists the new table; DML works.
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM extra WHERE k = 'a'"); err != nil {
		t.Fatal(err)
	}
	if got := db.Rows("extra"); got != 1 {
		t.Fatalf("rows %d", got)
	}
}

func TestOpenSweepsOrphanTemps(t *testing.T) {
	db, path := saveOrdersFile(t)
	_ = db
	dir := filepath.Dir(path)
	old := time.Now().Add(-2 * time.Hour)
	for _, name := range []string{".tde-wal-123456", ".tde-save-654321"} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh temp file (a concurrent writer's live rename source) must
	// survive the sweep.
	fresh := filepath.Join(dir, ".tde-wal-fresh")
	if err := os.WriteFile(fresh, []byte("live"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{".tde-wal-123456", ".tde-save-654321"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphan %s survived open: %v", name, err)
		}
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file swept: %v", err)
	}
}

func TestSaveToOtherPathMergesOverlay(t *testing.T) {
	db, _ := saveOrdersFile(t)
	if _, err := db.Exec("INSERT INTO orders VALUES ('open', 7, DATE '2014-06-01')"); err != nil {
		t.Fatal(err)
	}
	copyPath := filepath.Join(t.TempDir(), "copy.tde")
	if err := db.Save(copyPath); err != nil {
		t.Fatal(err)
	}
	cp, err := Open(copyPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := cp.Rows("orders"); got != 6 {
		t.Fatalf("saved copy rows %d", got)
	}
	// The original keeps its overlay (Save elsewhere is a copy, not a
	// compact): the sidecar still exists and still replays.
	if got := db.Rows("orders"); got != 6 {
		t.Fatalf("original rows %d", got)
	}
}

func TestDeltaCountersInQueryStats(t *testing.T) {
	db := importOrders(t)
	if _, err := db.Exec("INSERT INTO orders VALUES ('open', 1, DATE '2014-04-01')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM orders WHERE amount = 40"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	var deltaRows, deletedRows int64
	for _, op := range res.Stats().Operators {
		deltaRows += op.DeltaRows
		deletedRows += op.DeletedRows
	}
	if deltaRows != 1 || deletedRows != 1 {
		t.Fatalf("delta counters: +%d -%d", deltaRows, deletedRows)
	}
}

// sortedDump reads every row of every table in a deterministic order —
// the oracle state the crash tests compare.
func sortedDump(t *testing.T, db *Database) []string {
	t.Helper()
	var out []string
	names := db.TableNames()
	sort.Strings(names)
	for _, name := range names {
		rows := queryRows(t, db, "SELECT * FROM "+name)
		lines := make([]string, 0, len(rows))
		for _, r := range rows {
			lines = append(lines, fmt.Sprint(r))
		}
		sort.Strings(lines)
		out = append(out, name)
		out = append(out, lines...)
	}
	return out
}
