package tde

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tde/internal/plan"
)

// encodedTestDB builds a table shaped for compressed execution: r is a
// sorted small-domain column (run-length encoded at import), g is a
// small-domain random column dictionary-compressed explicitly, v is a
// plain real payload.
func encodedTestDB(t testing.TB) *Database {
	t.Helper()
	db := New()
	var sb strings.Builder
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&sb, "%d,%d,%d.%02d\n", i/64, (i*7)%20, i%97, i%100)
	}
	opt := DefaultImportOptions()
	opt.Schema = []string{"r:int", "g:int", "v:real"}
	opt.HeaderSet, opt.HasHeader = true, false
	if err := db.ImportCSV("m", []byte(sb.String()), opt); err != nil {
		t.Fatal(err)
	}
	if err := db.CompressColumn("m", "g"); err != nil {
		t.Fatalf("dictionary-compressing g: %v", err)
	}
	return db
}

// scanPlanSerial disables the rewrite plans so the scan-path encoded
// routines (rle-*, dict-filter) are what executes.
func scanPlanSerial(enc int) plan.Options {
	return plan.Options{ParallelWorkers: -1, NoDictPlan: true, NoIndexPlan: true, EncodedExec: enc}
}

func routineOf(t *testing.T, res *Result, kind string) string {
	t.Helper()
	for _, op := range res.Stats().Operators {
		if op.Kind == kind {
			return op.Routine
		}
	}
	t.Fatalf("no %s operator in stats", kind)
	return ""
}

// TestEncodedRoutinesChosen pins the routine selection itself: the
// encoded routines engage on dict/RLE columns and fall back when
// encoded execution is off or the column is plain.
func TestEncodedRoutinesChosen(t *testing.T) {
	db := encodedTestDB(t)
	ctx := context.Background()

	// RLE aggregate: single-column scan of an RLE column emits runs and
	// the aggregate folds them run-at-a-time.
	res, err := db.QueryContext(ctx, "SELECT SUM(r) FROM m", QueryOptions{Plan: scanPlanSerial(plan.EncodedAuto)})
	if err != nil {
		t.Fatal(err)
	}
	if r := routineOf(t, res, "Scan"); !strings.Contains(r, "(runs)") {
		t.Fatalf("scan routine %q does not emit runs", r)
	}
	if r := routineOf(t, res, "Aggregate"); r != "rle-sum" {
		t.Fatalf("aggregate routine %q, want rle-sum", r)
	}

	// Dictionary filter plus token-direct grouping.
	res, err = db.QueryContext(ctx, "SELECT g, SUM(v) FROM m WHERE g = 3 GROUP BY g",
		QueryOptions{Plan: scanPlanSerial(plan.EncodedAuto)})
	if err != nil {
		t.Fatal(err)
	}
	if r := routineOf(t, res, "Select"); r != "dict-filter" {
		t.Fatalf("select routine %q, want dict-filter", r)
	}
	if r := routineOf(t, res, "Aggregate"); r != "token-direct" {
		t.Fatalf("aggregate routine %q, want token-direct", r)
	}

	// Escape hatch: EncodedExec off keeps everything on the decoded path.
	res, err = db.QueryContext(ctx, "SELECT SUM(r) FROM m", QueryOptions{Plan: scanPlanSerial(plan.EncodedOff)})
	if err != nil {
		t.Fatal(err)
	}
	if r := routineOf(t, res, "Scan"); strings.Contains(r, "(runs)") {
		t.Fatalf("scan routine %q emits runs with encoded execution off", r)
	}
	if r := routineOf(t, res, "Aggregate"); strings.Contains(r, "rle") {
		t.Fatalf("aggregate routine %q uses an encoded routine with encoded execution off", r)
	}

	// Plain column: no encoded routine applies, with no knob needed.
	res, err = db.QueryContext(ctx, "SELECT SUM(v) FROM m WHERE v > 50",
		QueryOptions{Plan: scanPlanSerial(plan.EncodedAuto)})
	if err != nil {
		t.Fatal(err)
	}
	if r := routineOf(t, res, "Select"); r != "" {
		t.Fatalf("select routine %q on a plain real column, want the default row path", r)
	}
}

// TestExplainAnalyzeEncodedGolden pins the EXPLAIN ANALYZE rendering of
// the encoded routines (routine=rle-sum, routine=dict-filter,
// token-direct) and of the decoded fallback. Regenerate with
// `go test -run EncodedGolden -update-golden .`.
func TestExplainAnalyzeEncodedGolden(t *testing.T) {
	db := encodedTestDB(t)
	cases := []struct {
		name string
		sql  string
		enc  int
	}{
		{name: "encoded-rle-sum", sql: "SELECT SUM(r) FROM m", enc: plan.EncodedAuto},
		{name: "encoded-dict-filter", sql: "SELECT g, SUM(v) FROM m WHERE g = 3 GROUP BY g", enc: plan.EncodedAuto},
		{name: "encoded-off", sql: "SELECT SUM(r) FROM m", enc: plan.EncodedOff},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := db.QueryContext(context.Background(), tc.sql,
				QueryOptions{Plan: scanPlanSerial(tc.enc)})
			if err != nil {
				t.Fatal(err)
			}
			got := redactCounters(res.ExplainAnalyze())
			path := filepath.Join("testdata", "analyze", tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-golden)", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN ANALYZE shape changed.\n--- want\n%s--- got\n%s", want, got)
			}
		})
	}
}

// TestEncodedMatchesDecoded is a direct differential check on the
// fixture: encoded and decoded execution agree on filters, aggregates
// and grouping over the dict/RLE columns, serial and parallel.
func TestEncodedMatchesDecoded(t *testing.T) {
	db := encodedTestDB(t)
	queries := []string{
		"SELECT SUM(r) FROM m",
		"SELECT COUNT(r), MIN(r), MAX(r), AVG(r) FROM m",
		"SELECT g, COUNT(*) FROM m GROUP BY g",
		"SELECT g, SUM(v), MEDIAN(v) FROM m WHERE g >= 7 GROUP BY g",
		"SELECT r, COUNT(*) FROM m WHERE r < 100 GROUP BY r",
		"SELECT SUM(v) FROM m WHERE g = 3 AND v > 10",
	}
	for _, sql := range queries {
		want, err := db.QueryWithOptions(sql, scanPlanSerial(plan.EncodedOff))
		if err != nil {
			t.Fatalf("%s (decoded): %v", sql, err)
		}
		for _, workers := range []int{-1, 4} {
			opt := scanPlanSerial(plan.ForceEncodedExec)
			opt.ParallelWorkers = workers
			got, err := db.QueryWithOptions(sql, opt)
			if err != nil {
				t.Fatalf("%s (encoded, workers=%d): %v", sql, workers, err)
			}
			if !rowsMatch(sortedRows(want.Rows), sortedRows(got.Rows)) {
				t.Fatalf("%s: encoded (workers=%d) diverges from decoded:\n%v\n%v",
					sql, workers, want.Rows, got.Rows)
			}
		}
	}
}

// TestDeltaScanStaysDecoded is the regression test for the write-path
// interaction: a dirty table (live delta) must take the decoded
// DeltaScan path — run emission reasons from the base table's stored
// encodings, which no longer describe the visible rows — and after
// Compact the encoded path must give the same answer.
func TestDeltaScanStaysDecoded(t *testing.T) {
	db := encodedTestDB(t)
	ctx := context.Background()
	const sql = "SELECT SUM(r) FROM m"

	if _, err := db.Exec("INSERT INTO m (r, g, v) VALUES (1000, 3, 1.5)"); err != nil {
		t.Fatal(err)
	}
	dirty, err := db.QueryContext(ctx, sql, QueryOptions{Plan: scanPlanSerial(plan.ForceEncodedExec)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dirty.Plan, "DeltaScan") {
		t.Fatalf("dirty table did not plan a DeltaScan: %s", dirty.Plan)
	}
	for _, op := range dirty.Stats().Operators {
		if strings.Contains(op.Routine, "(runs)") || strings.Contains(op.Routine, "rle-") {
			t.Fatalf("dirty table used encoded routine %q on operator %s", op.Routine, op.Kind)
		}
	}
	decoded, err := db.QueryContext(ctx, sql, QueryOptions{Plan: scanPlanSerial(plan.EncodedOff)})
	if err != nil {
		t.Fatal(err)
	}
	if !rowsMatch(sortedRows(dirty.Rows), sortedRows(decoded.Rows)) {
		t.Fatalf("dirty encoded-path result %v != decoded %v", dirty.Rows, decoded.Rows)
	}

	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	clean, err := db.QueryContext(ctx, sql, QueryOptions{Plan: scanPlanSerial(plan.ForceEncodedExec)})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.Plan, "DeltaScan") {
		t.Fatalf("compacted table still plans a DeltaScan: %s", clean.Plan)
	}
	if !rowsMatch(sortedRows(clean.Rows), sortedRows(dirty.Rows)) {
		t.Fatalf("post-Compact encoded result %v != pre-Compact %v", clean.Rows, dirty.Rows)
	}
}
