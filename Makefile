GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz check check-db crash crash-wal crash-concurrent clean bench-parallel bench-compressed bench-write bench-serve bench-skip bench-check bench-baseline bench-overhead trace-smoke serve-torture serve-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One short coverage-guided pass per fuzz target; regressions in the
# committed corpus under testdata/fuzz fail `make test` already.
fuzz:
	$(GO) test -fuzz=FuzzEncFromBytes -fuzztime=$(FUZZTIME) ./internal/enc/
	$(GO) test -fuzz=FuzzStorageRead -fuzztime=$(FUZZTIME) ./internal/storage/
	$(GO) test -fuzz=FuzzSalvageOpen -fuzztime=$(FUZZTIME) ./internal/storage/
	$(GO) test -fuzz=FuzzSQLParse -fuzztime=$(FUZZTIME) ./internal/sqlparse/
	$(GO) test -fuzz=FuzzSpillRead -fuzztime=$(FUZZTIME) ./internal/spill/
	$(GO) test -fuzz=FuzzWALRead -fuzztime=$(FUZZTIME) ./internal/wal/
	$(GO) test -fuzz=FuzzWALReadConcurrent -fuzztime=$(FUZZTIME) ./internal/wal/

# Crash-consistency sweep: kill a save at every injectable point and
# require the on-disk file to be exactly the old or the new image.
CRASHSEEDS ?= 64
crash:
	$(GO) test -race -run 'TestCrashConsistency|TestBitFlipAtRestDetected' ./internal/storage/ -crashseeds $(CRASHSEEDS)

# Write-path crash sweep: kill transaction commits and delta merges at
# every injectable I/O operation and require recovery to land exactly on
# an "after j committed transactions" state (commits) or the pre-merge
# state (merges).
WALCRASHSEEDS ?= 128
crash-wal:
	$(GO) test -race -run 'TestWALCrashConsistency|TestMergeCrashConsistency' . -walcrashseeds $(WALCRASHSEEDS)

# Concurrent-writer crash torture: N goroutines of conflicting
# transactions (hot-row updates + unique markers, commit races retried)
# with the process killed at every injectable I/O operation, plus the
# snapshot-isolation sweep (balance-preserving transfers under readers
# and background auto-compaction). Recovery must keep every transaction
# atomically old-or-new and never lose a commit that reported success.
CONCCRASHSEEDS ?= 128
crash-concurrent:
	$(GO) test -race -run 'TestConcurrentCrashConsistency|TestConcurrentSnapshotInvariant' . -conccrashseeds $(CONCCRASHSEEDS)

# End-to-end integrity check of a real extract: generate a CSV with
# tdegen, import it with tdeload, then verify every column record (and
# every decoded value, -deep) with tdecheck.
check-db:
	@rm -rf .checkdb && mkdir -p .checkdb
	$(GO) run ./cmd/tdegen -kind flights -rows 5000 -out .checkdb
	$(GO) run ./cmd/tdeload -out .checkdb/flights.tde flights=.checkdb/flights.csv
	$(GO) run ./cmd/tdecheck -deep .checkdb/flights.tde
	@rm -rf .checkdb

# Morsel-parallelism benchmarks and the regression guard: bench-check
# fails when any parallel agg/join/import benchmark runs >2x slower than
# the committed BENCH_parallel.json baseline (regenerate the baseline on
# the owning machine with bench-baseline).
BENCH_PARALLEL = -run '^$$' -bench 'BenchmarkParallel' -benchtime 2x -count 1 .

# Compressed-execution benchmarks: each runs the same Flights-style
# query with encoded execution forced on and off, and the encoded arms
# are guarded against regression by BENCH_compressed.json (a slowdown
# past 2x the baseline means a routine stopped engaging or got slow).
BENCH_COMPRESSED = -run '^$$' -bench 'BenchmarkCompressed' -benchtime 3x -count 1 .

# Write-path benchmarks: non-conflicting update transactions, one writer
# vs GOMAXPROCS concurrent writers over the group-committed WAL. On a
# multi-core machine the concurrent arm must come in well under serial
# (statement scans overlap; committers share fsyncs); on any machine the
# guard catches a reintroduced global writer lock or commit-path blowup.
BENCH_WRITE = -run '^$$' -bench 'BenchmarkWriteTxn' -benchtime 300x -count 1 .

# Zone-skipping benchmarks: a selective date-range scan over TPC-H
# lineitem sorted by l_shipdate, run with block pruning forced on and
# off. BENCH_skip.json guards the pair: the skipping arm regressing past
# 2x its baseline means pruning stopped engaging (the benchmark itself
# also fails hard if zero blocks are skipped).
BENCH_SKIP = -run '^$$' -bench 'BenchmarkSkip' -benchtime 3x -count 1 .

# Serving-layer benchmark: 64 concurrent HTTP sessions over one shared
# database (admission control, pooled accounting, shared decode cache)
# on TPC-H lineitem. ns/op is guarded by BENCH_serve.json; qps and
# p50/p99 latency ride along as informational metrics.
BENCH_SERVE = -run '^$$' -bench 'BenchmarkServe64Sessions' -benchtime 192x -count 1 ./internal/serve

bench-parallel:
	$(GO) test $(BENCH_PARALLEL)

bench-compressed:
	$(GO) test $(BENCH_COMPRESSED)

bench-write:
	$(GO) test $(BENCH_WRITE)

bench-serve:
	$(GO) test $(BENCH_SERVE)

bench-skip:
	$(GO) test $(BENCH_SKIP)

bench-check:
	$(GO) test $(BENCH_PARALLEL) | $(GO) run ./scripts/benchcheck -baseline BENCH_parallel.json
	$(GO) test $(BENCH_COMPRESSED) | $(GO) run ./scripts/benchcheck -baseline BENCH_compressed.json
	$(GO) test $(BENCH_WRITE) | $(GO) run ./scripts/benchcheck -baseline BENCH_write.json
	$(GO) test $(BENCH_SKIP) | $(GO) run ./scripts/benchcheck -baseline BENCH_skip.json
	$(GO) test $(BENCH_SERVE) | $(GO) run ./scripts/benchcheck -baseline BENCH_serve.json

bench-baseline:
	$(GO) test $(BENCH_PARALLEL) | $(GO) run ./scripts/benchcheck -baseline BENCH_parallel.json -update
	$(GO) test $(BENCH_COMPRESSED) | $(GO) run ./scripts/benchcheck -baseline BENCH_compressed.json -update
	$(GO) test $(BENCH_WRITE) | $(GO) run ./scripts/benchcheck -baseline BENCH_write.json -update
	$(GO) test $(BENCH_SKIP) | $(GO) run ./scripts/benchcheck -baseline BENCH_skip.json -update
	$(GO) test $(BENCH_SERVE) | $(GO) run ./scripts/benchcheck -baseline BENCH_serve.json -update

# Multi-session server torture: 64 concurrent sessions with client-side
# faults (slow readers, mid-flight disconnects, overload) under -race,
# plus the admission/fairness/drain suite and the Open/Query/Close race
# regression tests. Leak-free is the pass criterion: zero goroutines,
# pool bytes, or epoch pins left after drain.
serve-torture:
	$(GO) test -race -count=1 -run 'TestServe|TestAdmission' ./internal/serve
	$(GO) test -race -count=1 -run 'TestQueryAfterClose|TestCloseCancelsRegistered|TestCloseRacesInFlight|TestRetryBackoff|TestExecRetryResolves' .

# Process-level smoke: build tdeserve, serve a generated extract, run 3
# concurrent clients, SIGTERM, and require a clean drain + exit 0.
serve-smoke:
	$(GO) run ./scripts/servesmoke

# Tighter guard for the per-operator instrumentation: with a baseline
# regenerated on this machine immediately before an instrumentation
# change, a >3% ns/op ratio on any parallel benchmark flags the new
# counters as too hot for the Next path.
bench-overhead:
	$(GO) test $(BENCH_PARALLEL) | $(GO) run ./scripts/benchcheck -baseline BENCH_parallel.json -maxratio 1.03

# End-to-end observability smoke test: generate a small TPC-H corpus,
# load three tables, run a two-hash-join aggregation with EXPLAIN
# ANALYZE + -trace through the real CLI, and validate the emitted
# Chrome trace's structure with tracecheck.
LINEITEM_SCHEMA = l_orderkey:int,l_partkey:int,l_suppkey:int,l_linenumber:int,l_quantity:int,l_extendedprice:real,l_discount:real,l_tax:real,l_returnflag:str,l_linestatus:str,l_shipdate:date,l_commitdate:date,l_receiptdate:date,l_shipinstruct:str,l_shipmode:str,l_comment:str
ORDERS_SCHEMA = o_orderkey:int,o_custkey:int,o_orderstatus:str,o_totalprice:real,o_orderdate:date,o_orderpriority:str,o_clerk:str,o_shippriority:int,o_comment:str
CUSTOMER_SCHEMA = c_custkey:int,c_name:str,c_address:str,c_nationkey:int,c_phone:str,c_acctbal:real,c_mktsegment:str,c_comment:str
TRACE_QUERY = SELECT c_mktsegment, COUNT(*), SUM(l_extendedprice) FROM lineitem JOIN orders ON l_orderkey = o_orderkey JOIN customer ON o_custkey = c_custkey GROUP BY c_mktsegment ORDER BY c_mktsegment

trace-smoke:
	@rm -rf .tracedb && mkdir -p .tracedb
	$(GO) run ./cmd/tdegen -kind tpch -sf 0.01 -out .tracedb
	$(GO) run ./cmd/tdeload -out .tracedb/tpch.tde -header no -schema '$(LINEITEM_SCHEMA)' lineitem=.tracedb/lineitem.tbl
	$(GO) run ./cmd/tdeload -append -out .tracedb/tpch.tde -header no -schema '$(ORDERS_SCHEMA)' orders=.tracedb/orders.tbl
	$(GO) run ./cmd/tdeload -append -out .tracedb/tpch.tde -header no -schema '$(CUSTOMER_SCHEMA)' customer=.tracedb/customer.tbl
	$(GO) run ./cmd/tdequery -db .tracedb/tpch.tde -analyze -trace .tracedb/q.trace.json "$(TRACE_QUERY)"
	$(GO) run ./scripts/tracecheck .tracedb/q.trace.json
	@rm -rf .tracedb

check: vet build race fuzz

clean:
	$(GO) clean ./...
