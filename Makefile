GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One short coverage-guided pass per fuzz target; regressions in the
# committed corpus under testdata/fuzz fail `make test` already.
fuzz:
	$(GO) test -fuzz=FuzzEncFromBytes -fuzztime=$(FUZZTIME) ./internal/enc/
	$(GO) test -fuzz=FuzzStorageRead -fuzztime=$(FUZZTIME) ./internal/storage/
	$(GO) test -fuzz=FuzzSQLParse -fuzztime=$(FUZZTIME) ./internal/sqlparse/

check: vet build race fuzz

clean:
	$(GO) clean ./...
