GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz check clean bench-parallel bench-check bench-baseline

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One short coverage-guided pass per fuzz target; regressions in the
# committed corpus under testdata/fuzz fail `make test` already.
fuzz:
	$(GO) test -fuzz=FuzzEncFromBytes -fuzztime=$(FUZZTIME) ./internal/enc/
	$(GO) test -fuzz=FuzzStorageRead -fuzztime=$(FUZZTIME) ./internal/storage/
	$(GO) test -fuzz=FuzzSQLParse -fuzztime=$(FUZZTIME) ./internal/sqlparse/

# Morsel-parallelism benchmarks and the regression guard: bench-check
# fails when any parallel agg/join/import benchmark runs >2x slower than
# the committed BENCH_parallel.json baseline (regenerate the baseline on
# the owning machine with bench-baseline).
BENCH_PARALLEL = -run '^$$' -bench 'BenchmarkParallel' -benchtime 2x -count 1 .

bench-parallel:
	$(GO) test $(BENCH_PARALLEL)

bench-check:
	$(GO) test $(BENCH_PARALLEL) | $(GO) run ./scripts/benchcheck -baseline BENCH_parallel.json

bench-baseline:
	$(GO) test $(BENCH_PARALLEL) | $(GO) run ./scripts/benchcheck -baseline BENCH_parallel.json -update

check: vet build race fuzz

clean:
	$(GO) clean ./...
