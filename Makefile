GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz check check-db crash clean bench-parallel bench-check bench-baseline

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One short coverage-guided pass per fuzz target; regressions in the
# committed corpus under testdata/fuzz fail `make test` already.
fuzz:
	$(GO) test -fuzz=FuzzEncFromBytes -fuzztime=$(FUZZTIME) ./internal/enc/
	$(GO) test -fuzz=FuzzStorageRead -fuzztime=$(FUZZTIME) ./internal/storage/
	$(GO) test -fuzz=FuzzSalvageOpen -fuzztime=$(FUZZTIME) ./internal/storage/
	$(GO) test -fuzz=FuzzSQLParse -fuzztime=$(FUZZTIME) ./internal/sqlparse/
	$(GO) test -fuzz=FuzzSpillRead -fuzztime=$(FUZZTIME) ./internal/spill/

# Crash-consistency sweep: kill a save at every injectable point and
# require the on-disk file to be exactly the old or the new image.
CRASHSEEDS ?= 64
crash:
	$(GO) test -race -run 'TestCrashConsistency|TestBitFlipAtRestDetected' ./internal/storage/ -crashseeds $(CRASHSEEDS)

# End-to-end integrity check of a real extract: generate a CSV with
# tdegen, import it with tdeload, then verify every column record (and
# every decoded value, -deep) with tdecheck.
check-db:
	@rm -rf .checkdb && mkdir -p .checkdb
	$(GO) run ./cmd/tdegen -kind flights -rows 5000 -out .checkdb
	$(GO) run ./cmd/tdeload -out .checkdb/flights.tde flights=.checkdb/flights.csv
	$(GO) run ./cmd/tdecheck -deep .checkdb/flights.tde
	@rm -rf .checkdb

# Morsel-parallelism benchmarks and the regression guard: bench-check
# fails when any parallel agg/join/import benchmark runs >2x slower than
# the committed BENCH_parallel.json baseline (regenerate the baseline on
# the owning machine with bench-baseline).
BENCH_PARALLEL = -run '^$$' -bench 'BenchmarkParallel' -benchtime 2x -count 1 .

bench-parallel:
	$(GO) test $(BENCH_PARALLEL)

bench-check:
	$(GO) test $(BENCH_PARALLEL) | $(GO) run ./scripts/benchcheck -baseline BENCH_parallel.json

bench-baseline:
	$(GO) test $(BENCH_PARALLEL) | $(GO) run ./scripts/benchcheck -baseline BENCH_parallel.json -update

check: vet build race fuzz

clean:
	$(GO) clean ./...
