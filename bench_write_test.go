package tde

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// The write benchmarks measure transaction throughput on the optimistic
// write path. Each transaction updates one distinct row of a 20k-row
// table — non-conflicting writers, the workload the MVCC redesign is for.
// Serial is the old single-writer shape: one goroutine, statements and
// commits strictly alternating. Concurrent runs GOMAXPROCS writers: the
// expensive part of a transaction (the snapshot scan behind the UPDATE)
// runs outside every lock, and commits serialize only through
// first-committer validation plus the group-commit WAL append, whose
// fsyncs concurrent committers share. ns/op in the concurrent arm must
// stay well below serial — that ratio is what BENCH_write.json guards.

const benchWriteRows = 20_000

func benchWriteDB(b *testing.B) *Database {
	b.Helper()
	var csv strings.Builder
	csv.WriteString("id,val\n")
	for i := 0; i < benchWriteRows; i++ {
		fmt.Fprintf(&csv, "%d,0\n", i)
	}
	mem := New()
	if err := mem.ImportCSV("acct", []byte(csv.String()), DefaultImportOptions()); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.tde")
	if err := mem.Save(path); err != nil {
		b.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// benchCommitUpdate runs one transaction bumping a single distinct row;
// callers hand out ids so concurrent writers never collide.
func benchCommitUpdate(db *Database, id int64) error {
	tx, err := db.Begin()
	if err != nil {
		return err
	}
	if _, err := tx.Exec(fmt.Sprintf("UPDATE acct SET val = val + 1 WHERE id = %d", id%benchWriteRows)); err != nil {
		_ = tx.Rollback()
		return err
	}
	return tx.Commit()
}

func BenchmarkWriteTxnSerial(b *testing.B) {
	db := benchWriteDB(b)
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchCommitUpdate(db, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteTxnConcurrent(b *testing.B) {
	db := benchWriteDB(b)
	defer db.Close()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := benchCommitUpdate(db, next.Add(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
