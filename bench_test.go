package tde

// Benchmarks regenerating the paper's evaluation (one benchmark family
// per table/figure; see DESIGN.md's experiment index). Sizes are scaled
// to finish under `go test -bench=.` on a laptop; cmd/tdebench runs the
// same drivers at larger scales with the paper-shaped renderings.

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"tde/internal/enc"
	"tde/internal/exec"
	"tde/internal/expr"
	"tde/internal/harness"
	"tde/internal/plan"
	"tde/internal/rlegen"
	"tde/internal/storage"
	"tde/internal/textscan"
	"tde/internal/tpch"
	"tde/internal/types"
)

var (
	dsOnce sync.Once
	dsVal  *harness.Datasets
	dsErr  error
)

// benchDatasets generates the shared text corpora once.
func benchDatasets(b *testing.B) *harness.Datasets {
	b.Helper()
	dsOnce.Do(func() {
		dsVal, dsErr = harness.GenerateDatasets(0.01, 50000, 42)
	})
	if dsErr != nil {
		b.Fatal(dsErr)
	}
	return dsVal
}

var (
	rlOnce  sync.Once
	rlSmall *storage.Table
	rlLarge *storage.Table
)

func benchRLTables(b *testing.B) (*storage.Table, *storage.Table) {
	b.Helper()
	rlOnce.Do(func() {
		rlSmall = rlegen.Build(200000, 42)
		rlLarge = rlegen.Build(4000000, 43)
	})
	return rlSmall, rlLarge
}

// --- Figure 4: parsing performance ---

func benchImport(b *testing.B, data []byte, cfg harness.ImportConfig) {
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Import(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_Bandwidth(b *testing.B) {
	ds := benchDatasets(b)
	b.SetBytes(int64(len(ds.Lineitem)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		textscan.SumBytes(ds.Lineitem)
	}
}

func BenchmarkFig4_Tokenize(b *testing.B) {
	ds := benchDatasets(b)
	b.SetBytes(int64(len(ds.Lineitem)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		textscan.CountFields(ds.Lineitem, '|')
	}
}

func BenchmarkFig4_Split(b *testing.B) {
	ds := benchDatasets(b)
	b.SetBytes(int64(len(ds.Lineitem)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		textscan.SplitColumns(ds.Lineitem, '|', 16)
	}
}

func BenchmarkFig4_ScalarsEncoded(b *testing.B) {
	benchImport(b, benchDatasets(b).Lineitem,
		harness.ImportConfig{Encode: true, ScalarsOnly: true})
}

func BenchmarkFig4_ScalarsUnencoded(b *testing.B) {
	benchImport(b, benchDatasets(b).Lineitem,
		harness.ImportConfig{Encode: false, ScalarsOnly: true})
}

func BenchmarkFig4_AllEncodedAccelerated(b *testing.B) {
	benchImport(b, benchDatasets(b).Lineitem,
		harness.ImportConfig{Encode: true, Accelerate: true})
}

func BenchmarkFig4_AllUnencoded(b *testing.B) {
	benchImport(b, benchDatasets(b).Lineitem,
		harness.ImportConfig{Encode: false, Accelerate: false})
}

func BenchmarkFig4_FlightsAllEncodedAccelerated(b *testing.B) {
	benchImport(b, benchDatasets(b).Flights,
		harness.ImportConfig{Encode: true, Accelerate: true})
}

// --- Figure 5: compression savings (reported as metrics) ---

func BenchmarkFig5_CompressionSavings(b *testing.B) {
	ds := benchDatasets(b)
	b.ResetTimer()
	var rows []harness.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Fig5(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Encoded && r.Accelerated {
			prefix := r.Dataset
			b.ReportMetric(float64(r.PhysicalBytes), prefix+"_physical_bytes")
			b.ReportMetric(float64(r.LogicalBytes), prefix+"_logical_bytes")
			b.ReportMetric(float64(r.TextBytes), prefix+"_text_bytes")
		}
	}
}

// --- Figure 6: heap sorting ---

func BenchmarkFig6_HeapSorting(b *testing.B) {
	ds := benchDatasets(b)
	b.ResetTimer()
	var rows []harness.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Fig6(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Encoded {
			b.ReportMetric(float64(r.SortedHeaps), "sorted_"+groupKey(r.Group))
			b.ReportMetric(float64(r.StringHeaps), "heaps_"+groupKey(r.Group))
		}
	}
}

func groupKey(g string) string {
	if g == "Large Tables" {
		return "large"
	}
	return "sf1"
}

// --- Figure 7: metadata extraction ---

func BenchmarkFig7_MetadataDetected(b *testing.B) {
	ds := benchDatasets(b)
	b.ResetTimer()
	var rows []harness.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Fig7(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Properties), "props_"+groupKey(r.Group)+"_enc_"+onoff(r.Encoded))
	}
}

func onoff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

// --- Figures 8 and 9: width reduction ---

func BenchmarkFig8And9_WidthReduction(b *testing.B) {
	ds := benchDatasets(b)
	b.ResetTimer()
	var strs, ints harness.WidthHistogram
	for i := 0; i < b.N; i++ {
		var err error
		strs, ints, err = harness.Fig8And9(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(strs.Total-strs.Counts[8]), "fig8_strings_narrowed")
	b.ReportMetric(float64(strs.Total), "fig8_strings_total")
	b.ReportMetric(float64(ints.Total-ints.Counts[8]), "fig9_ints_narrowed")
	b.ReportMetric(float64(ints.Total), "fig9_ints_total")
}

// --- Figure 10: filter/aggregate plans ---

func benchFig10(b *testing.B, tab *storage.Table, index string, planNo, sel int) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunFig10Point(tab, index, planNo, sel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_Small_Primary_Plan1(b *testing.B) {
	s, _ := benchRLTables(b)
	benchFig10(b, s, "primary", 1, 50)
}

func BenchmarkFig10_Small_Primary_Plan2(b *testing.B) {
	s, _ := benchRLTables(b)
	benchFig10(b, s, "primary", 2, 50)
}

func BenchmarkFig10_Small_Primary_Plan3(b *testing.B) {
	s, _ := benchRLTables(b)
	benchFig10(b, s, "primary", 3, 50)
}

func BenchmarkFig10_Small_Secondary_Plan1(b *testing.B) {
	s, _ := benchRLTables(b)
	benchFig10(b, s, "secondary", 1, 50)
}

func BenchmarkFig10_Small_Secondary_Plan2(b *testing.B) {
	s, _ := benchRLTables(b)
	benchFig10(b, s, "secondary", 2, 50)
}

func BenchmarkFig10_Small_Secondary_Plan3(b *testing.B) {
	s, _ := benchRLTables(b)
	benchFig10(b, s, "secondary", 3, 50)
}

func BenchmarkFig10_Large_Primary_Plan1(b *testing.B) {
	_, l := benchRLTables(b)
	benchFig10(b, l, "primary", 1, 50)
}

func BenchmarkFig10_Large_Primary_Plan2(b *testing.B) {
	_, l := benchRLTables(b)
	benchFig10(b, l, "primary", 2, 50)
}

func BenchmarkFig10_Large_Primary_Plan3(b *testing.B) {
	_, l := benchRLTables(b)
	benchFig10(b, l, "primary", 3, 50)
}

func BenchmarkFig10_Large_Secondary_Plan1(b *testing.B) {
	_, l := benchRLTables(b)
	benchFig10(b, l, "secondary", 1, 50)
}

func BenchmarkFig10_Large_Secondary_Plan2(b *testing.B) {
	_, l := benchRLTables(b)
	benchFig10(b, l, "secondary", 2, 50)
}

func BenchmarkFig10_Large_Secondary_Plan3(b *testing.B) {
	_, l := benchRLTables(b)
	benchFig10(b, l, "secondary", 3, 50)
}

// --- Sect. 4.3: exchange routing overhead ---

func BenchmarkExchangeOrdering_Preserve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.ExchangeOrdering(500000, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.PreserveOrder {
				b.ReportMetric(float64(r.PhysicalBytes), "ordered_bytes")
			} else {
				b.ReportMetric(float64(r.PhysicalBytes), "free_bytes")
			}
		}
	}
}

// --- Sect. 5.1.2: locale-lock ablation ---

func BenchmarkLocaleLock_BufferParsers(b *testing.B) {
	benchImport(b, benchDatasets(b).Lineitem,
		harness.ImportConfig{Encode: true, Accelerate: true, Parallel: true})
}

func BenchmarkLocaleLock_LockedParsers(b *testing.B) {
	benchImport(b, benchDatasets(b).Lineitem,
		harness.ImportConfig{Encode: true, Accelerate: true, Parallel: true, LocaleLocked: true})
}

// --- Sect. 3.2: dynamic encoding stability ---

func BenchmarkDynamicEncoding(b *testing.B) {
	ds := benchDatasets(b)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		var err error
		_, total, err = harness.DynamicEncoding(ds.Lineitem)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total), "reencodings")
}

// --- Ablations: design choices called out in DESIGN.md ---

// Tactical join algorithm choice (Sect. 2.3.5/4.1.2): fetch vs direct vs
// hash on the same dense inner key.
func benchJoin(b *testing.B, algo exec.JoinAlgo) {
	s, _ := benchRLTables(b)
	// Join the table's own primary values against a dense 0..99 dimension.
	dimW := enc.NewWriter(enc.WriterConfig{Signed: true, ConvertOptimal: true})
	valW := enc.NewWriter(enc.WriterConfig{Signed: true, ConvertOptimal: true})
	for i := 0; i < 100; i++ {
		dimW.AppendOne(uint64(i))
		valW.AppendOne(uint64(i * 3))
	}
	dimStream := dimW.Finish() // Finish flushes; stats are complete after
	valStream := valW.Finish()
	dimMeta := enc.MetadataFromStats(dimW.Stats(), true)
	inner := &exec.Built{Rows: 100, Cols: []exec.BuiltColumn{
		{Info: exec.ColInfo{Name: "pk", Type: types.Integer, Meta: dimMeta}, Data: dimStream},
		{Info: exec.ColInfo{Name: "val", Type: types.Integer}, Data: valStream},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan, err := exec.NewScan(s, "primary")
		if err != nil {
			b.Fatal(err)
		}
		j := exec.NewHashJoin(scan, exec.NewBuiltScan(inner), 0, 0, algo)
		if _, err := exec.Run(j); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinAlgo_Fetch(b *testing.B)  { benchJoin(b, exec.JoinFetch) }
func BenchmarkJoinAlgo_Direct(b *testing.B) { benchJoin(b, exec.JoinDirect) }
func BenchmarkJoinAlgo_Hash(b *testing.B)   { benchJoin(b, exec.JoinHash) }

// Aggregation algorithm choice (Sect. 2.3.4): ordered vs direct vs hash
// over the sorted primary column.
func benchAgg(b *testing.B, mode exec.AggMode) {
	s, _ := benchRLTables(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan, err := exec.NewScan(s, "primary", "secondary")
		if err != nil {
			b.Fatal(err)
		}
		agg := exec.NewAggregate(scan, []int{0},
			[]exec.AggSpec{{Func: exec.Max, Col: 1}}, mode)
		if _, err := exec.Run(agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggMode_Ordered(b *testing.B) { benchAgg(b, exec.AggOrdered) }
func BenchmarkAggMode_Direct(b *testing.B)  { benchAgg(b, exec.AggDirect) }
func BenchmarkAggMode_Hash(b *testing.B)    { benchAgg(b, exec.AggHash) }

// --- Sect. 8 future-work implementations ---

// Index roll-up: converting a daily index to a monthly one on the index
// alone, versus recomputing the truncation per row.
func BenchmarkRollUpIndex(b *testing.B) {
	tab := rollupTable(b)
	idx, err := plan.IndexTable(tab.Columns[0])
	if err != nil {
		b.Fatal(err)
	}
	roll := expr.NewDatePart(expr.TruncMonth, expr.NewColRef(0, "d", types.Date))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.RollUpIndex(idx, roll); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionedOrderedAggregate_1Worker(b *testing.B) {
	benchPartitioned(b, 1)
}

func BenchmarkPartitionedOrderedAggregate_4Workers(b *testing.B) {
	benchPartitioned(b, 4)
}

func benchPartitioned(b *testing.B, workers int) {
	tab := rollupTable(b)
	idx, err := plan.IndexTable(tab.Columns[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.PartitionedOrderedAggregate(idx, tab, "v", exec.Sum, workers); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	ruOnce sync.Once
	ruTab  *storage.Table
)

func rollupTable(b *testing.B) *storage.Table {
	b.Helper()
	ruOnce.Do(func() {
		const perDay = 2000
		base := types.DaysFromCivil(2013, 1, 1)
		dw := enc.NewWriter(enc.WriterConfig{Signed: true, ConvertOptimal: true})
		vw := enc.NewWriter(enc.WriterConfig{Signed: true, ConvertOptimal: true})
		for d := 0; d < 365; d++ {
			for k := 0; k < perDay; k++ {
				dw.AppendOne(uint64(base + int64(d)))
				vw.AppendOne(uint64((d*perDay + k) % 977))
			}
		}
		dcol := &storage.Column{Name: "d", Type: types.Date, Data: dw.Finish()}
		dcol.Meta = enc.MetadataFromStats(dw.Stats(), true)
		vcol := &storage.Column{Name: "v", Type: types.Integer, Data: vw.Finish()}
		vcol.Meta = enc.MetadataFromStats(vw.Stats(), true)
		ruTab = &storage.Table{Name: "facts", Columns: []*storage.Column{dcol, vcol}}
	})
	return ruTab
}

// --- Sect. 2.3.3: the single-file copy ---
//
// A database must be written as one file; compression "helps reduce the
// total size and, thus, the cost of making this unavoidable copy".

func benchSave(b *testing.B, encode bool) {
	ds := benchDatasets(b)
	bt, err := harness.Import(ds.Lineitem, harness.ImportConfig{Encode: encode, Accelerate: true})
	if err != nil {
		b.Fatal(err)
	}
	tab := bt.ToTable("lineitem")
	var sink countingWriter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.n = 0
		if err := storage.Write(&sink, []*storage.Table{tab}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(sink.n)
	b.ReportMetric(float64(sink.n), "file_bytes")
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func BenchmarkSingleFileCopy_Encoded(b *testing.B)   { benchSave(b, true) }
func BenchmarkSingleFileCopy_Unencoded(b *testing.B) { benchSave(b, false) }

// --- Morsel parallelism: partial aggregation, partitioned join, import ---
//
// Parallel-vs-serial pairs over an SF 0.1 TPC-H extract. `make bench-check`
// compares these against BENCH_parallel.json and fails on a >2x
// regression; on multi-core hosts the 4-worker variants should also beat
// serial (the ISSUE's 1.5x acceptance bar).

var (
	pbOnce sync.Once
	pbDB   *Database
	pbErr  error
)

// parallelBenchDB imports SF 0.1 lineitem + orders once.
func parallelBenchDB(b *testing.B) *Database {
	b.Helper()
	pbOnce.Do(func() {
		g := tpch.New(0.1, 42)
		db := New()
		var li bytes.Buffer
		if pbErr = g.WriteLineitem(&li); pbErr != nil {
			return
		}
		kinds := []string{"int", "int", "int", "int", "int", "real", "real", "real",
			"str", "str", "date", "date", "date", "str", "str", "str"}
		schema := make([]string, len(tpch.LineitemSchema))
		for i, n := range tpch.LineitemSchema {
			schema[i] = n + ":" + kinds[i]
		}
		opt := DefaultImportOptions()
		opt.Schema = schema
		opt.HeaderSet, opt.HasHeader = true, false
		if pbErr = db.ImportCSV("lineitem", li.Bytes(), opt); pbErr != nil {
			return
		}
		var ord bytes.Buffer
		if pbErr = g.WriteOrders(&ord); pbErr != nil {
			return
		}
		opt = DefaultImportOptions()
		opt.Schema = []string{"o_orderkey:int", "o_custkey:int", "o_orderstatus:str",
			"o_totalprice:real", "o_orderdate:date", "o_orderpriority:str",
			"o_clerk:str", "o_shippriority:int", "o_comment:str"}
		opt.HeaderSet, opt.HasHeader = true, false
		if pbErr = db.ImportCSV("orders", ord.Bytes(), opt); pbErr != nil {
			return
		}
		pbDB = db
	})
	if pbErr != nil {
		b.Fatal(pbErr)
	}
	return pbDB
}

func benchParallelQuery(b *testing.B, sql string, workers int) {
	db := parallelBenchDB(b)
	opt := plan.Options{ParallelWorkers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryWithOptions(sql, opt); err != nil {
			b.Fatal(err)
		}
	}
}

const parallelAggSQL = `SELECT l_returnflag, l_linestatus, SUM(l_quantity),
	AVG(l_extendedprice), COUNT(*) FROM lineitem
	GROUP BY l_returnflag, l_linestatus`

const parallelJoinSQL = `SELECT o_orderpriority, COUNT(*), SUM(l_quantity)
	FROM lineitem JOIN orders ON l_orderkey = o_orderkey
	GROUP BY o_orderpriority`

func BenchmarkParallelAgg_Serial(b *testing.B)    { benchParallelQuery(b, parallelAggSQL, -1) }
func BenchmarkParallelAgg_4Workers(b *testing.B)  { benchParallelQuery(b, parallelAggSQL, 4) }
func BenchmarkParallelJoin_Serial(b *testing.B)   { benchParallelQuery(b, parallelJoinSQL, -1) }
func BenchmarkParallelJoin_4Workers(b *testing.B) { benchParallelQuery(b, parallelJoinSQL, 4) }

// Spill pair: a high-cardinality aggregation run fully in memory and
// under a budget tight enough to force the partitioned spill-to-disk
// path, quantifying the cost of graceful degradation.
const spillAggSQL = `SELECT l_orderkey, COUNT(*), SUM(l_quantity)
	FROM lineitem GROUP BY l_orderkey`

func benchSpillQuery(b *testing.B, mem int64) {
	db := parallelBenchDB(b)
	opt := QueryOptions{MemoryBudget: mem, SpillBudget: 1 << 30}
	opt.Plan.ParallelWorkers = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.QueryContext(context.Background(), spillAggSQL, opt)
		if err != nil {
			b.Fatal(err)
		}
		if mem > 0 && !res.Stats().Spilled() {
			b.Fatal("budgeted run did not spill; the benchmark is not measuring degradation")
		}
	}
}

func BenchmarkParallelSpillAgg_InMemory(b *testing.B) { benchSpillQuery(b, 0) }
func BenchmarkParallelSpillAgg_Spilling(b *testing.B) { benchSpillQuery(b, 512<<10) }

// Import pair: the block-pipeline parse (Sect. 5.1.2) against the serial
// scan over the shared SF 0.01 corpus.
func BenchmarkParallelImport_Serial(b *testing.B) {
	ds := benchDatasets(b)
	benchImport(b, ds.Lineitem, harness.ImportConfig{Encode: true, Accelerate: true})
}

func BenchmarkParallelImport_Pipeline(b *testing.B) {
	ds := benchDatasets(b)
	benchImport(b, ds.Lineitem, harness.ImportConfig{Encode: true, Accelerate: true, Parallel: true})
}
