// Command tdecheck verifies and repairs single-file TDE databases.
//
// Verification opens the file in salvage mode and reports every damaged
// region with table, column and byte-offset detail (format v2 checksums
// each column record individually, so damage is localized to exactly the
// flipped column). Repair rewrites the file keeping the intact columns
// and dropping the quarantined ones — an explicit, destructive decision,
// which is why Open refuses to do it silently.
//
// A write-ahead log sidecar (extract.tde.wal), when present, is verified
// too: every frame checksum is checked and the tail is classified. An
// uncommitted tail or a stale log (bound to a different base image —
// the benign leftover of a completed merge) are notes; a damaged tail is
// corruption. Repair truncates a damaged or uncommitted tail to the last
// committed transaction, removes a stale log, and sweeps orphaned
// commit/merge temp files. -merge folds the log and delta into fresh
// compressed extents and retires the log.
//
// Usage:
//
//	tdecheck extract.tde              verify; exit 0 clean, 1 corrupt
//	tdecheck -deep extract.tde        also decode every value of every column
//	tdecheck -repair extract.tde      rewrite in place, dropping damaged columns
//	tdecheck -repair -out fixed.tde extract.tde
//	tdecheck -merge extract.tde       re-encode logged writes into the base file
//
// Exit codes: 0 = clean (or repaired), 1 = corruption found (verify mode),
// 2 = usage or I/O error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tde"
	"tde/internal/iofault"
	"tde/internal/spill"
	"tde/internal/storage"
	"tde/internal/wal"
)

func main() {
	deep := flag.Bool("deep", false, "decode every value of every column (full scan) and cross-check zone maps against the decoded blocks")
	repair := flag.Bool("repair", false, "rewrite the file dropping quarantined columns")
	merge := flag.Bool("merge", false, "re-encode logged writes into the base file and retire the log")
	out := flag.String("out", "", "repair output path (default: in place)")
	quiet := flag.Bool("q", false, "suppress the per-table summary, print only damage")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tdecheck [-deep] [-repair [-out fixed.tde]] [-merge] [-q] extract.tde")
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *merge {
		doMerge(path)
		return
	}

	tables, rep, err := storage.ReadFileFS(iofault.OS, path, storage.ReadOptions{
		Salvage:    true,
		DeepVerify: *deep,
	})
	if err != nil {
		var uv *storage.UnsupportedVersionError
		if errors.As(err, &uv) {
			fmt.Fprintf(os.Stderr, "tdecheck: %s: %v\n", path, uv)
		} else {
			fmt.Fprintf(os.Stderr, "tdecheck: %s: %v\n", path, err)
		}
		os.Exit(2)
	}

	if !*quiet {
		for _, t := range tables {
			fmt.Printf("table %-16s %8d rows  %2d columns  %d bytes physical\n",
				t.Name, t.Rows(), len(t.Columns), t.PhysicalSize())
		}
	}

	walDamaged := checkWAL(path, *repair, *quiet)

	if rep == nil || len(rep.Entries) == 0 {
		if walDamaged {
			os.Exit(1)
		}
		if !*quiet {
			fmt.Println("ok: no corruption found")
		}
		return
	}

	fmt.Fprintln(os.Stderr, rep)

	if !*repair {
		os.Exit(1)
	}
	// Repair mode also sweeps spill temp dirs orphaned by crashed queries
	// (recognizable by the tde-spill- prefix), and the WAL/save temp files
	// a crashed commit or merge left next to the database; no-ops when
	// none exist.
	if n, err := spill.Sweep(os.TempDir(), 0); err == nil && n > 0 {
		fmt.Printf("removed %d orphaned spill dir(s)\n", n)
	}
	if n, err := wal.SweepTemps(filepath.Dir(path), 0); err == nil && n > 0 {
		fmt.Printf("removed %d orphaned temp file(s)\n", n)
	}
	dst := *out
	if dst == "" {
		dst = path
	}
	if err := storage.WriteFile(dst, tables); err != nil {
		fmt.Fprintf(os.Stderr, "tdecheck: repair write failed: %v\n", err)
		os.Exit(2)
	}
	// The rewritten base no longer matches the log's binding; a stale log
	// would only confuse the next open, so an in-place repair retires it.
	// (Unmerged committed transactions in it are part of what the damage
	// cost — repair is explicitly destructive.)
	if dst == path {
		if err := os.Remove(wal.Path(path)); err == nil {
			fmt.Println("removed write-ahead log invalidated by the repair")
		}
	}
	fmt.Printf("repaired: wrote %s with %d table(s), dropping %d damaged region(s)\n",
		dst, len(tables), len(rep.Entries))
}

// checkWAL verifies the log sidecar, if any: frame checksums, record
// structure, tail classification and the binding to the base image. In
// repair mode a damaged or uncommitted tail is truncated to the last
// committed transaction and a stale log removed; otherwise damage is
// reported and the caller exits 1.
func checkWAL(path string, repair, quiet bool) (damaged bool) {
	walPath := wal.Path(path)
	rp, raw, err := wal.ReadFile(iofault.OS, walPath)
	if err != nil {
		if os.IsNotExist(err) {
			return false
		}
		// Header-level damage: the log carries no recoverable prefix.
		fmt.Fprintf(os.Stderr, "tdecheck: %v\n", err)
		if repair {
			if err := os.Remove(walPath); err == nil {
				fmt.Println("removed unreadable write-ahead log")
				return false
			}
		}
		return true
	}

	base, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdecheck: %s: %v\n", path, err)
		os.Exit(2)
	}
	if rp.Binding != wal.Bind(base) {
		if repair {
			if err := os.Remove(walPath); err == nil {
				fmt.Println("removed stale write-ahead log (bound to a different base image)")
			}
		} else if !quiet {
			fmt.Printf("note: stale write-ahead log (bound to a different base image); ignored on open\n")
		}
		return false
	}

	if !quiet {
		fmt.Printf("wal   %-16s %8d committed txn(s)  tail %s\n",
			filepath.Base(walPath), len(rp.Txns), rp.Tail)
	}
	switch rp.Tail {
	case wal.TailClean:
		return false
	case wal.TailUncommitted:
		if repair {
			if err := wal.RepairTail(iofault.OS, walPath, raw, rp.CleanLen); err != nil {
				fmt.Fprintf(os.Stderr, "tdecheck: wal repair: %v\n", err)
				os.Exit(2)
			}
			fmt.Printf("truncated uncommitted log tail at byte %d\n", rp.CleanLen)
		} else if !quiet {
			fmt.Printf("note: uncommitted log tail (crash artifact); ignored on open\n")
		}
		return false
	default: // TailCorrupt
		fmt.Fprintf(os.Stderr, "tdecheck: %v\n", rp.Err)
		if repair {
			if err := wal.RepairTail(iofault.OS, walPath, raw, rp.CleanLen); err != nil {
				fmt.Fprintf(os.Stderr, "tdecheck: wal repair: %v\n", err)
				os.Exit(2)
			}
			fmt.Printf("truncated damaged log tail at byte %d (%d committed txn(s) kept)\n",
				rp.CleanLen, len(rp.Txns))
			return false
		}
		return true
	}
}

// doMerge opens the database (replaying its log) and compacts: the delta
// overlay is re-encoded into fresh compressed extents, the base file
// atomically replaced, and the log retired.
func doMerge(path string) {
	db, err := tde.Open(path)
	if err != nil {
		exitIfCorruptCheck(err)
		fmt.Fprintln(os.Stderr, "tdecheck:", err)
		os.Exit(2)
	}
	if err := db.Compact(); err != nil {
		fmt.Fprintln(os.Stderr, "tdecheck: merge:", err)
		os.Exit(2)
	}
	for _, t := range db.TableNames() {
		fmt.Printf("table %-16s %8d rows\n", t, db.Rows(t))
	}
	fmt.Println("merged: logged writes re-encoded into the base file")
}

func exitIfCorruptCheck(err error) {
	var rep *tde.CorruptionReport
	if errors.As(err, &rep) {
		fmt.Fprintf(os.Stderr, "tdecheck: database is corrupt; run tdecheck -repair first:\n%s\n", rep)
		os.Exit(1)
	}
}
