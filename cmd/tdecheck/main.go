// Command tdecheck verifies and repairs single-file TDE databases.
//
// Verification opens the file in salvage mode and reports every damaged
// region with table, column and byte-offset detail (format v2 checksums
// each column record individually, so damage is localized to exactly the
// flipped column). Repair rewrites the file keeping the intact columns
// and dropping the quarantined ones — an explicit, destructive decision,
// which is why Open refuses to do it silently.
//
// Usage:
//
//	tdecheck extract.tde              verify; exit 0 clean, 1 corrupt
//	tdecheck -deep extract.tde        also decode every value of every column
//	tdecheck -repair extract.tde      rewrite in place, dropping damaged columns
//	tdecheck -repair -out fixed.tde extract.tde
//
// Exit codes: 0 = clean (or repaired), 1 = corruption found (verify mode),
// 2 = usage or I/O error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"tde/internal/iofault"
	"tde/internal/spill"
	"tde/internal/storage"
)

func main() {
	deep := flag.Bool("deep", false, "decode every value of every column (full scan)")
	repair := flag.Bool("repair", false, "rewrite the file dropping quarantined columns")
	out := flag.String("out", "", "repair output path (default: in place)")
	quiet := flag.Bool("q", false, "suppress the per-table summary, print only damage")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tdecheck [-deep] [-repair [-out fixed.tde]] [-q] extract.tde")
		os.Exit(2)
	}
	path := flag.Arg(0)

	tables, rep, err := storage.ReadFileFS(iofault.OS, path, storage.ReadOptions{
		Salvage:    true,
		DeepVerify: *deep,
	})
	if err != nil {
		var uv *storage.UnsupportedVersionError
		if errors.As(err, &uv) {
			fmt.Fprintf(os.Stderr, "tdecheck: %s: %v\n", path, uv)
		} else {
			fmt.Fprintf(os.Stderr, "tdecheck: %s: %v\n", path, err)
		}
		os.Exit(2)
	}

	if !*quiet {
		for _, t := range tables {
			fmt.Printf("table %-16s %8d rows  %2d columns  %d bytes physical\n",
				t.Name, t.Rows(), len(t.Columns), t.PhysicalSize())
		}
	}

	if rep == nil || len(rep.Entries) == 0 {
		if !*quiet {
			fmt.Println("ok: no corruption found")
		}
		return
	}

	fmt.Fprintln(os.Stderr, rep)

	if !*repair {
		os.Exit(1)
	}
	// Repair mode also sweeps spill temp dirs orphaned by crashed queries
	// (recognizable by the tde-spill- prefix); a no-op when none exist.
	if n, err := spill.Sweep(os.TempDir(), 0); err == nil && n > 0 {
		fmt.Printf("removed %d orphaned spill dir(s)\n", n)
	}
	dst := *out
	if dst == "" {
		dst = path
	}
	if err := storage.WriteFile(dst, tables); err != nil {
		fmt.Fprintf(os.Stderr, "tdecheck: repair write failed: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("repaired: wrote %s with %d table(s), dropping %d damaged region(s)\n",
		dst, len(tables), len(rep.Entries))
}
