// Command tdegen generates the evaluation data sets: TPC-H .tbl files
// (dbgen-style), the synthetic FAA Flights CSV, or a run-length table
// saved directly as a .tde database.
//
// Usage:
//
//	tdegen -kind tpch -sf 0.1 -out ./data
//	tdegen -kind flights -rows 1000000 -out ./data
//	tdegen -kind rle -rows 1000000 -out ./data/rl.tde
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tde/internal/flights"
	"tde/internal/rlegen"
	"tde/internal/storage"
	"tde/internal/tpch"
)

func main() {
	kind := flag.String("kind", "tpch", "data set: tpch | flights | rle")
	sf := flag.Float64("sf", 0.1, "TPC-H scale factor")
	rows := flag.Int("rows", 1000000, "row count (flights, rle)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", ".", "output directory (tpch, flights) or file (rle)")
	flag.Parse()

	if err := run(*kind, *sf, *rows, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tdegen:", err)
		os.Exit(1)
	}
}

func run(kind string, sf float64, rows int, seed int64, out string) error {
	switch kind {
	case "tpch":
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		g := tpch.New(sf, seed)
		if err := g.WriteAll(out); err != nil {
			return err
		}
		fmt.Printf("wrote %d TPC-H tables (SF %g) to %s\n", len(tpch.TableNames), sf, out)
	case "flights":
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		path := filepath.Join(out, "flights.csv")
		if err := flights.New(rows, seed).WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %d flights rows to %s\n", rows, path)
	case "rle":
		tab := rlegen.Build(rows, seed)
		if err := storage.WriteFile(out, []*storage.Table{tab}); err != nil {
			return err
		}
		fmt.Printf("wrote %d-row run-length table to %s\n", rows, out)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	return nil
}
