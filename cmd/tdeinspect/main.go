// Command tdeinspect dumps the physical design of a TDE database: every
// table's columns with their encodings, widths, dictionaries, heaps and
// extracted metadata (Sect. 3.4.2).
//
// Usage:
//
//	tdeinspect extract.tde
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tde"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tdeinspect file.tde")
		os.Exit(2)
	}
	db, err := tde.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdeinspect:", err)
		os.Exit(1)
	}
	for _, name := range db.TableNames() {
		logical, physical, _ := db.Sizes(name)
		fmt.Printf("table %s: %d rows, logical %dK, physical %dK (%.0f%% saved)\n",
			name, db.Rows(name), logical/1024, physical/1024,
			100*(1-float64(physical)/float64(logical+1)))
		cols, err := db.Columns(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdeinspect:", err)
			os.Exit(1)
		}
		for _, c := range cols {
			var extra []string
			if c.DictionarySize > 0 {
				extra = append(extra, fmt.Sprintf("dict=%d", c.DictionarySize))
			}
			if c.HeapBytes > 0 {
				s := fmt.Sprintf("heap=%dK", c.HeapBytes/1024)
				if c.HeapSorted {
					s += "(sorted)"
				}
				extra = append(extra, s)
			}
			if c.SortedKnown && c.Sorted {
				extra = append(extra, "sorted")
			}
			if c.Dense {
				extra = append(extra, "dense")
			}
			if c.Unique {
				extra = append(extra, "unique")
			}
			if c.CardinalityExact {
				extra = append(extra, fmt.Sprintf("card=%d", c.Cardinality))
			}
			if c.HasRange && c.MinDisplay != "" {
				extra = append(extra, fmt.Sprintf("range=[%s,%s]", c.MinDisplay, c.MaxDisplay))
			}
			fmt.Printf("  %-20s %-9s %-7s w%d %8dK  %s\n",
				c.Name, c.Type, c.Encoding, c.WidthBytes,
				c.PhysicalBytes/1024, strings.Join(extra, " "))
		}
	}
}
