// Command tdeinspect dumps the physical design of a TDE database: every
// table's columns with their encodings, widths, dictionaries, heaps and
// extracted metadata (Sect. 3.4.2), plus the write overlay's merge debt
// (delta rows, deletions, dead rows, epochs, WAL size) so an operator can
// see when compaction is due.
//
// Usage:
//
//	tdeinspect extract.tde
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tde"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tdeinspect file.tde")
		os.Exit(2)
	}
	db, err := tde.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdeinspect:", err)
		os.Exit(1)
	}
	ws := db.WriteStats()
	overlay := map[string]tde.TableWriteStats{}
	for _, t := range ws.Tables {
		overlay[t.Table] = t
	}
	for _, name := range db.TableNames() {
		logical, physical, _ := db.Sizes(name)
		fmt.Printf("table %s: %d rows, logical %dK, physical %dK (%.0f%% saved)\n",
			name, db.Rows(name), logical/1024, physical/1024,
			100*(1-float64(physical)/float64(logical+1)))
		if t, ok := overlay[name]; ok {
			fmt.Printf("  overlay: +%d rows -%d base rows, %d dead (GC-able), %d reclaimed, %dK heap\n",
				t.LiveRows, t.DeletedBase, t.DeadRows, t.ReclaimedRows, t.Bytes/1024)
		}
		cols, err := db.Columns(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdeinspect:", err)
			os.Exit(1)
		}
		for _, c := range cols {
			var extra []string
			if c.DictionarySize > 0 {
				extra = append(extra, fmt.Sprintf("dict=%d", c.DictionarySize))
			}
			if c.HeapBytes > 0 {
				s := fmt.Sprintf("heap=%dK", c.HeapBytes/1024)
				if c.HeapSorted {
					s += "(sorted)"
				}
				extra = append(extra, s)
			}
			if c.SortedKnown && c.Sorted {
				extra = append(extra, "sorted")
			}
			if c.Dense {
				extra = append(extra, "dense")
			}
			if c.Unique {
				extra = append(extra, "unique")
			}
			if c.CardinalityExact {
				extra = append(extra, fmt.Sprintf("card=%d", c.Cardinality))
			}
			if c.HasRange && c.MinDisplay != "" {
				extra = append(extra, fmt.Sprintf("range=[%s,%s]", c.MinDisplay, c.MaxDisplay))
			}
			if c.ZoneBlocks > 0 {
				s := fmt.Sprintf("zones=%d", c.ZoneBlocks)
				if c.ZoneHasRange {
					if c.ZoneMinDisplay != "" {
						s += fmt.Sprintf("[%s,%s]", c.ZoneMinDisplay, c.ZoneMaxDisplay)
					} else {
						// Token-domain bounds (dictionary/heap columns).
						s += fmt.Sprintf("[tok %d,%d]", c.ZoneMin, c.ZoneMax)
					}
				}
				if c.ZoneNullsKnown {
					s += " nulls-exact"
				}
				extra = append(extra, s)
			}
			fmt.Printf("  %-20s %-9s %-7s w%d %8dK  %s\n",
				c.Name, c.Type, c.Encoding, c.WidthBytes,
				c.PhysicalBytes/1024, strings.Join(extra, " "))
		}
	}
	if len(ws.Tables) > 0 || ws.WALBytes > 0 || ws.PublishedEpoch > 0 {
		fmt.Printf("write path: epoch %d (staged %d), %d live pinned epochs, gen %d, wal %dK",
			ws.PublishedEpoch, ws.StagedEpoch, ws.LiveEpochs, ws.Generation, ws.WALBytes/1024)
		if ws.Poisoned {
			fmt.Print(", POISONED")
		}
		fmt.Println()
	}
}
