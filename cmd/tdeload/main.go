// Command tdeload imports delimited text files into a single-file TDE
// database, running the full TextScan => FlowTable pipeline: separator,
// type and header inference, dynamic encoding, heap sorting, type
// narrowing and metadata extraction.
//
// Usage:
//
//	tdeload -out db.tde table1=file1.csv table2=file2.tbl
//	tdeload -out db.tde -no-encode lineitem=lineitem.tbl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tde"
)

// exitIfCorrupt prints the structured corruption report and exits with a
// distinct status (3) so scripts can tell "corrupt input database" apart
// from usage errors (2) and ordinary failures (1).
func exitIfCorrupt(tool string, err error) {
	var rep *tde.CorruptionReport
	if errors.As(err, &rep) {
		fmt.Fprintf(os.Stderr, "%s: input database is corrupt (run tdecheck, or tdecheck -repair):\n%s\n", tool, rep)
		os.Exit(3)
	}
}

// parseBytes parses a byte quantity like "64M", "1G" or "65536".
func parseBytes(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch u := s[len(s)-1]; u {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(s, "B"), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte quantity %q", s)
	}
	return n * mult, nil
}

func main() {
	out := flag.String("out", "out.tde", "output database file")
	noEncode := flag.Bool("no-encode", false, "disable dynamic encoding")
	noAccel := flag.Bool("no-accel", false, "disable the heap accelerator")
	serial := flag.Bool("serial", false, "disable parallel column processing")
	header := flag.String("header", "auto", "header handling: auto | yes | no")
	schema := flag.String("schema", "", "comma-separated name:type column specs")
	collation := flag.String("collation", "binary", "string collation: binary | ci | en")
	verbose := flag.Bool("v", false, "print the per-column physical design report")
	appendTo := flag.Bool("append", false, "add tables to an existing database file")
	verify := flag.Bool("verify", false, "with -append: fully verify every column value of the existing database at open")
	compress := flag.String("compress", "", "comma-separated table.column list to dictionary-compress after import")
	timeout := flag.Duration("timeout", 0, "per-import wall-clock limit (e.g. 5m; 0 = none)")
	mem := flag.String("mem", "", "per-import memory budget (e.g. 1G; empty = unlimited)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "tdeload: no inputs; pass table=file arguments")
		os.Exit(2)
	}
	opt := tde.ImportOptions{
		Encode:     !*noEncode,
		Accelerate: !*noAccel,
		Parallel:   !*serial,
		Collation:  *collation,
	}
	switch *header {
	case "yes":
		opt.HeaderSet, opt.HasHeader = true, true
	case "no":
		opt.HeaderSet, opt.HasHeader = true, false
	}
	if *schema != "" {
		opt.Schema = strings.Split(*schema, ",")
	}
	budget, err := parseBytes(*mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdeload:", err)
		os.Exit(2)
	}
	qopt := tde.QueryOptions{Timeout: *timeout, MemoryBudget: budget}

	db := tde.New()
	if *appendTo {
		loaded, _, err := tde.OpenWithOptions(*out, tde.OpenOptions{Verify: *verify})
		if err != nil {
			exitIfCorrupt("tdeload", err)
			fmt.Fprintf(os.Stderr, "tdeload: -append: %v\n", err)
			os.Exit(1)
		}
		db = loaded
	}
	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "tdeload: argument %q is not table=file\n", arg)
			os.Exit(2)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdeload: %s: %v\n", path, err)
			os.Exit(1)
		}
		if err := db.ImportCSVContext(context.Background(), name, data, opt, qopt); err != nil {
			fmt.Fprintf(os.Stderr, "tdeload: %s: %v\n", path, err)
			os.Exit(1)
		}
		logical, physical, _ := db.Sizes(name)
		fmt.Printf("imported %s: %d rows, logical %dK, physical %dK\n",
			name, db.Rows(name), logical/1024, physical/1024)
		if *verbose {
			report(db, name)
		}
	}
	if *compress != "" {
		for _, spec := range strings.Split(*compress, ",") {
			table, col, ok := strings.Cut(spec, ".")
			if !ok {
				fmt.Fprintf(os.Stderr, "tdeload: -compress entry %q is not table.column\n", spec)
				os.Exit(2)
			}
			if err := db.CompressColumn(table, col); err != nil {
				fmt.Fprintf(os.Stderr, "tdeload: compress %s: %v\n", spec, err)
				os.Exit(1)
			}
			fmt.Printf("dictionary-compressed %s\n", spec)
		}
	}
	if err := db.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "tdeload:", err)
		os.Exit(1)
	}
	fmt.Println("saved", *out)
}

func report(db *tde.Database, table string) {
	cols, err := db.Columns(table)
	if err != nil {
		return
	}
	fmt.Printf("  %-20s %-9s %-7s %5s %10s %10s %s\n",
		"column", "type", "enc", "width", "physical", "logical", "metadata")
	for _, c := range cols {
		var md []string
		if c.SortedKnown && c.Sorted {
			md = append(md, "sorted")
		}
		if c.Dense {
			md = append(md, "dense")
		}
		if c.Unique {
			md = append(md, "unique")
		}
		if c.CardinalityExact {
			md = append(md, fmt.Sprintf("card=%d", c.Cardinality))
		}
		if c.NullsKnown && !c.HasNulls {
			md = append(md, "no-nulls")
		}
		if c.HeapSorted {
			md = append(md, "heap-sorted")
		}
		fmt.Printf("  %-20s %-9s %-7s %5d %9dK %9dK %s\n",
			c.Name, c.Type, c.Encoding, c.WidthBytes,
			c.PhysicalBytes/1024, c.LogicalBytes/1024, strings.Join(md, ","))
	}
}
