// Command tdebench regenerates the paper's evaluation figures (Sect. 6)
// and in-text measurements, printing the same rows/series the paper
// reports. Scale knobs default to sizes that finish on a laptop; raise
// them to approach the paper's SF-30 / 67 M row / 1 B row corpora.
//
// Usage:
//
//	tdebench -fig all
//	tdebench -fig 10 -small 1000000 -large 64000000
//	tdebench -fig 4 -sf 0.1 -flight-rows 500000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"tde"
	"tde/internal/harness"
	"tde/internal/tpch"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: 4,5,6,7,8,9,10,exchange,locale,dynamic,all")
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor for import figures")
	flightRows := flag.Int("flight-rows", 200000, "flights rows for import figures")
	small := flag.Int("small", 1000000, "Fig. 10 small table rows")
	large := flag.Int("large", 16000000, "Fig. 10 large table rows")
	repeats := flag.Int("repeats", 3, "Fig. 10 repetitions (best-of)")
	seed := flag.Int64("seed", 42, "random seed")
	tracePath := flag.String("trace", "", "run a representative two-join TPC-H query and write its Chrome trace (chrome://tracing) to this file")
	flag.Parse()

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[f] = true
	}
	figSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fig" {
			figSet = true
		}
	})
	if *tracePath != "" && !figSet {
		// -trace alone shouldn't drag in every figure; run just the trace.
		want = map[string]bool{}
	}
	all := want["all"]

	needsImports := all || want["4"] || want["5"] || want["6"] || want["7"] ||
		want["8"] || want["9"] || want["locale"] || want["dynamic"] || *tracePath != ""
	var ds *harness.Datasets
	if needsImports {
		fmt.Fprintf(os.Stderr, "generating datasets (TPC-H SF %g, %d flight rows)...\n", *sf, *flightRows)
		var err error
		ds, err = harness.GenerateDatasets(*sf, *flightRows, *seed)
		if err != nil {
			fatal(err)
		}
	}

	if all || want["4"] {
		rows, err := harness.Fig4(ds)
		if err != nil {
			fatal(err)
		}
		harness.RenderFig4(os.Stdout, rows)
		fmt.Println()
	}
	if all || want["5"] {
		rows, err := harness.Fig5(ds)
		if err != nil {
			fatal(err)
		}
		harness.RenderFig5(os.Stdout, rows)
		v1, err := harness.Fig5V1(ds)
		if err != nil {
			fatal(err)
		}
		harness.RenderFig5V1(os.Stdout, v1)
		fmt.Println()
	}
	if all || want["6"] {
		rows, err := harness.Fig6(ds)
		if err != nil {
			fatal(err)
		}
		harness.RenderFig6(os.Stdout, rows)
		fmt.Println()
	}
	if all || want["7"] {
		rows, err := harness.Fig7(ds)
		if err != nil {
			fatal(err)
		}
		harness.RenderFig7(os.Stdout, rows)
		fmt.Println()
	}
	if all || want["8"] || want["9"] {
		strs, ints, err := harness.Fig8And9(ds)
		if err != nil {
			fatal(err)
		}
		if all || want["8"] {
			harness.RenderWidths(os.Stdout, "Figure 8", strs)
		}
		if all || want["9"] {
			harness.RenderWidths(os.Stdout, "Figure 9", ints)
		}
		fmt.Println()
	}
	if all || want["10"] {
		cfg := harness.DefaultFig10Config()
		cfg.SmallRows, cfg.LargeRows, cfg.Repeats, cfg.Seed = *small, *large, *repeats, *seed
		fmt.Fprintf(os.Stderr, "building run-length tables (%d and %d rows)...\n", *small, *large)
		points, err := harness.Fig10(cfg)
		if err != nil {
			fatal(err)
		}
		harness.RenderFig10(os.Stdout, points)
		fmt.Println()
	}
	if all || want["exchange"] {
		rows, err := harness.ExchangeOrdering(2000000, 4)
		if err != nil {
			fatal(err)
		}
		harness.RenderExchange(os.Stdout, rows)
		fmt.Println()
	}
	if all || want["locale"] {
		rows, err := harness.LocaleLock(ds.Lineitem)
		if err != nil {
			fatal(err)
		}
		harness.RenderLocaleLock(os.Stdout, rows)
		fmt.Println()
	}
	if all || want["dynamic"] {
		rows, total, err := harness.DynamicEncoding(ds.Lineitem)
		if err != nil {
			fatal(err)
		}
		harness.RenderDynamic(os.Stdout, rows, total)
	}
	if *tracePath != "" {
		if err := writeTrace(ds, *tracePath); err != nil {
			fatal(err)
		}
	}
}

// traceQuery is the representative workload for -trace: a two-hash-join
// TPC-H aggregation, so the trace shows two distinct join operators with
// their own IDs, counters and tactical routines.
const traceQuery = "SELECT c_mktsegment, COUNT(*), SUM(l_extendedprice) " +
	"FROM lineitem JOIN orders ON l_orderkey = o_orderkey " +
	"JOIN customer ON o_custkey = c_custkey " +
	"GROUP BY c_mktsegment ORDER BY c_mktsegment"

// writeTrace imports the generated lineitem, orders and customer corpora
// into an in-memory database, runs traceQuery, prints its EXPLAIN ANALYZE
// tree and saves the per-operator Chrome trace to path.
func writeTrace(ds *harness.Datasets, path string) error {
	db := tde.New()
	opt := tde.DefaultImportOptions()
	opt.HeaderSet, opt.HasHeader = true, false
	opt.Schema = lineitemSchema()
	if err := db.ImportCSV("lineitem", ds.Lineitem, opt); err != nil {
		return fmt.Errorf("import lineitem: %w", err)
	}
	opt.Schema = []string{"o_orderkey:int", "o_custkey:int", "o_orderstatus:str",
		"o_totalprice:real", "o_orderdate:date", "o_orderpriority:str",
		"o_clerk:str", "o_shippriority:int", "o_comment:str"}
	if err := db.ImportCSV("orders", ds.Small["orders"], opt); err != nil {
		return fmt.Errorf("import orders: %w", err)
	}
	opt.Schema = []string{"c_custkey:int", "c_name:str", "c_address:str",
		"c_nationkey:int", "c_phone:str", "c_acctbal:real",
		"c_mktsegment:str", "c_comment:str"}
	if err := db.ImportCSV("customer", ds.Small["customer"], opt); err != nil {
		return fmt.Errorf("import customer: %w", err)
	}
	fmt.Fprintf(os.Stderr, "tracing: %s\n", traceQuery)
	res, err := db.ExplainAnalyzeContext(context.Background(), traceQuery, tde.QueryOptions{})
	if err != nil {
		return err
	}
	fmt.Print(res.ExplainAnalyze())
	if err := res.SaveTrace(path); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote trace to", path)
	return nil
}

// lineitemSchema forces the canonical TPC-H lineitem column names and
// types (header inference can't name a headerless .tbl file).
func lineitemSchema() []string {
	kinds := []string{"int", "int", "int", "int", "int", "real", "real", "real",
		"str", "str", "date", "date", "date", "str", "str", "str"}
	out := make([]string, len(tpch.LineitemSchema))
	for i, n := range tpch.LineitemSchema {
		out[i] = n + ":" + kinds[i]
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdebench:", err)
	os.Exit(1)
}
