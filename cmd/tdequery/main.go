// Command tdequery runs SQL against a single-file TDE database.
//
// Usage:
//
//	tdequery -db extract.tde "SELECT status, COUNT(*) FROM orders GROUP BY status"
//	tdequery -db extract.tde -explain "SELECT ... "
//	tdequery -db extract.tde -csv "SELECT ... " > out.csv
//	tdequery -db extract.tde "INSERT INTO orders VALUES ('open', 10, NULL)"
//	tdequery -db extract.tde -i        # interactive shell (\compact merges logged writes)
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tde"
	"tde/internal/plan"
)

// exitIfCorrupt prints the structured corruption report and exits with a
// distinct status (3) so scripts can tell "corrupt input database" apart
// from usage errors (2) and bad queries (1).
func exitIfCorrupt(tool string, err error) {
	var rep *tde.CorruptionReport
	if errors.As(err, &rep) {
		fmt.Fprintf(os.Stderr, "%s: input database is corrupt (run tdecheck, or tdecheck -repair):\n%s\n", tool, rep)
		os.Exit(3)
	}
}

// isDML reports whether the statement is a mutation (INSERT, UPDATE or
// DELETE), routed through the transactional write path rather than the
// query engine.
func isDML(sql string) bool {
	f := strings.Fields(sql)
	if len(f) == 0 {
		return false
	}
	switch strings.ToUpper(f[0]) {
	case "INSERT", "UPDATE", "DELETE":
		return true
	}
	return false
}

// parseBytes parses a byte quantity like "64M", "1G" or "65536".
func parseBytes(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch u := s[len(s)-1]; u {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(s, "B"), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte quantity %q", s)
	}
	return n * mult, nil
}

func main() {
	dbPath := flag.String("db", "", "database file")
	explain := flag.Bool("explain", false, "print the plan instead of running")
	analyze := flag.Bool("analyze", false, "run the query and print the plan tree annotated with per-operator actuals")
	tracePath := flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the query's operators to this file")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	interactive := flag.Bool("i", false, "interactive shell (reads statements from stdin)")
	timeout := flag.Duration("timeout", 0, "per-query wall-clock limit (e.g. 30s; 0 = none)")
	retry := flag.Int("retry", 0, "retry DML up to N times on write-write conflict, with jittered backoff (0 = fail fast)")
	mem := flag.String("mem", "", "per-query memory budget (e.g. 64M, 1G; empty = unlimited)")
	spillArg := flag.String("spill", "", "per-query spill-to-disk budget (e.g. 256M, 4G; empty = no spilling, budget errors fail fast)")
	workers := flag.Int("workers", 0, "parallel workers per query stage (>0 force, 0 auto, <0 serial)")
	encoded := flag.String("encoded", "auto", "compressed execution: auto/on (encoded routines), off (decode at scan — escape hatch)")
	skip := flag.String("skip", "auto", "zone-map block skipping: auto/on (prune blocks a sargable predicate refutes), off (scan every block — escape hatch)")
	verify := flag.Bool("verify", false, "fully verify every column value at open (catches damage beyond checksums)")
	salvage := flag.Bool("salvage", false, "open a damaged database read-only, quarantining damaged columns")
	flag.Parse()

	if *dbPath == "" || (flag.NArg() == 0 && !*interactive) {
		fmt.Fprintln(os.Stderr, "usage: tdequery -db file.tde [-explain|-csv|-i] [-timeout 30s] [-mem 64M] \"SELECT ...\"")
		os.Exit(2)
	}
	budget, err := parseBytes(*mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdequery:", err)
		os.Exit(2)
	}
	spillBudget, err := parseBytes(*spillArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdequery:", err)
		os.Exit(2)
	}
	qopt := tde.QueryOptions{Timeout: *timeout, MemoryBudget: budget, SpillBudget: spillBudget}
	qopt.Plan.ParallelWorkers = *workers
	switch *encoded {
	case "auto":
		qopt.Plan.EncodedExec = plan.EncodedAuto
	case "on":
		qopt.Plan.EncodedExec = plan.ForceEncodedExec
	case "off":
		qopt.Plan.EncodedExec = plan.EncodedOff
	default:
		fmt.Fprintln(os.Stderr, "tdequery: -encoded must be auto, on, or off")
		os.Exit(2)
	}
	switch *skip {
	case "auto":
		qopt.Plan.ZoneSkip = plan.ZoneSkipAuto
	case "on":
		qopt.Plan.ZoneSkip = plan.ForceZoneSkip
	case "off":
		qopt.Plan.ZoneSkip = plan.ZoneSkipOff
	default:
		fmt.Fprintln(os.Stderr, "tdequery: -skip must be auto, on, or off")
		os.Exit(2)
	}
	db, rep, err := tde.OpenWithOptions(*dbPath, tde.OpenOptions{Verify: *verify, Salvage: *salvage})
	if err != nil {
		exitIfCorrupt("tdequery", err)
		fmt.Fprintln(os.Stderr, "tdequery:", err)
		os.Exit(1)
	}
	if rep != nil {
		fmt.Fprintf(os.Stderr, "tdequery: warning: opened read-only with quarantined data:\n%s\n", rep)
	}
	if *interactive {
		repl(db, *csv, qopt, *retry)
		return
	}
	sql := strings.Join(flag.Args(), " ")
	if isDML(sql) {
		n, err := execDML(db, sql, *retry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdequery:", err)
			os.Exit(1)
		}
		fmt.Printf("(%d rows affected)\n", n)
		return
	}
	if *explain {
		p, err := db.ExplainWithOptions(sql, qopt.Plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdequery:", err)
			os.Exit(1)
		}
		fmt.Println(p)
		return
	}
	res, err := db.QueryContext(context.Background(), sql, qopt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdequery:", err)
		os.Exit(1)
	}
	if *tracePath != "" {
		if err := res.SaveTrace(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "tdequery: writing trace:", err)
			os.Exit(1)
		}
	}
	switch {
	case *analyze:
		fmt.Print(res.ExplainAnalyze())
	case *csv:
		printCSV(res)
	default:
		printResult(res)
	}
}

// execDML runs a mutation; with retry > 0 a first-committer-wins
// conflict is retried up to retry additional attempts with jittered
// backoff (db.ExecRetryAttempts) instead of failing fast.
func execDML(db *tde.Database, sql string, retry int) (int, error) {
	if retry <= 0 {
		return db.Exec(sql)
	}
	return db.ExecRetryAttempts(context.Background(), sql, retry+1)
}

// repl reads statements (one per line; "\t" lists tables, "\d table"
// describes one, "\q" quits) and prints results.
func repl(db *tde.Database, csv bool, qopt tde.QueryOptions, retry int) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprint(os.Stderr, "tde> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\t`:
			for _, n := range db.TableNames() {
				fmt.Printf("%s (%d rows)\n", n, db.Rows(n))
			}
		case strings.HasPrefix(line, `\d `):
			describe(db, strings.TrimSpace(line[3:]))
		case line == `\compact`:
			if err := db.Compact(); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println("compacted")
			}
		case isDML(line):
			n, err := execDML(db, line, retry)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				break
			}
			fmt.Printf("(%d rows affected)\n", n)
		default:
			res, err := db.QueryContext(context.Background(), line, qopt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				break
			}
			if csv {
				printCSV(res)
			} else {
				printResult(res)
			}
		}
		fmt.Fprint(os.Stderr, "tde> ")
	}
}

func describe(db *tde.Database, table string) {
	cols, err := db.Columns(table)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	for _, c := range cols {
		fmt.Printf("%-20s %-9s %s w%d\n", c.Name, c.Type, c.Encoding, c.WidthBytes)
	}
}

func printCSV(res *tde.Result) {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	writeCSVRow(w, res.Columns)
	for _, r := range res.Rows {
		writeCSVRow(w, r)
	}
}

func writeCSVRow(w *bufio.Writer, vals []string) {
	for i, v := range vals {
		if i > 0 {
			w.WriteByte(',')
		}
		if strings.ContainsAny(v, ",\"\n") {
			w.WriteByte('"')
			w.WriteString(strings.ReplaceAll(v, `"`, `""`))
			w.WriteByte('"')
		} else {
			w.WriteString(v)
		}
	}
	w.WriteByte('\n')
}

func printResult(res *tde.Result) {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	for _, r := range res.Rows {
		for i, v := range r {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	printRow(res.Columns, widths)
	seps := make([]string, len(widths))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	printRow(seps, widths)
	for _, r := range res.Rows {
		printRow(r, widths)
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func printRow(vals []string, widths []int) {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%-*s", widths[i], v)
	}
	fmt.Println(strings.Join(parts, "  "))
}
