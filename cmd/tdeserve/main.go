// Command tdeserve serves a single-file TDE database to many concurrent
// sessions over HTTP+JSON. One shared database backs every session; a
// FIFO admission controller bounds concurrent query executions, a
// process-wide governor pools memory/spill accounting and a shared
// decode cache across queries, and overload is shed with 503 +
// Retry-After instead of exhausting memory. SIGTERM/SIGINT drains
// gracefully: admission stops, in-flight queries finish (bounded by
// -drain-timeout), stragglers are cancelled, and the process exits
// cleanly.
//
// Usage:
//
//	tdeserve -db extract.tde -addr :8080 -mem 1G -cache 128M
//	curl -s localhost:8080/query -d '{"sql":"SELECT COUNT(*) FROM orders"}'
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tde"
	"tde/internal/serve"
)

// parseBytes parses a byte quantity like "64M", "1G" or "65536".
func parseBytes(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch u := s[len(s)-1]; u {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(s, "B"), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte quantity %q", s)
	}
	return n * mult, nil
}

func main() {
	dbPath := flag.String("db", "", "database file")
	addr := flag.String("addr", ":8080", "listen address")
	maxConc := flag.Int("max-concurrent", 8, "queries executing at once; excess requests queue FIFO")
	maxQueue := flag.Int("queue", 64, "admission queue depth; beyond it requests are shed with 503")
	queueWait := flag.Duration("queue-wait", 5*time.Second, "longest a request may wait queued before being shed")
	queryTimeout := flag.Duration("query-timeout", 60*time.Second, "per-query wall-clock limit")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain bound: in-flight queries beyond it are cancelled")
	memArg := flag.String("mem", "", "pooled memory cap shared by all queries + decode cache (e.g. 1G; empty = unlimited)")
	spillArg := flag.String("spill", "", "pooled spill-disk cap shared by all queries (empty = unlimited)")
	cacheArg := flag.String("cache", "", "shared decode-cache size (e.g. 128M; empty = cache off)")
	qmemArg := flag.String("query-mem", "", "per-query memory budget (empty = pool-bounded only)")
	qspillArg := flag.String("query-spill", "", "per-query spill budget (empty = spilling off)")
	spillDir := flag.String("spill-dir", "", "base directory for spill files (default: system temp)")
	flag.Parse()

	if *dbPath == "" {
		fmt.Fprintln(os.Stderr, "usage: tdeserve -db file.tde [-addr :8080] [-mem 1G] [-cache 128M]")
		os.Exit(2)
	}
	bytesOf := func(name, s string) int64 {
		n, err := parseBytes(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdeserve: -%s: %v\n", name, err)
			os.Exit(2)
		}
		return n
	}
	cfg := serve.Config{
		MaxConcurrent: *maxConc,
		MaxQueue:      *maxQueue,
		QueueWait:     *queueWait,
		QueryTimeout:  *queryTimeout,
		DrainTimeout:  *drainTimeout,
		Governor: tde.GovernorConfig{
			MemoryBytes: bytesOf("mem", *memArg),
			SpillBytes:  bytesOf("spill", *spillArg),
			CacheBytes:  bytesOf("cache", *cacheArg),
		},
		QueryMemoryBytes: bytesOf("query-mem", *qmemArg),
		QuerySpillBytes:  bytesOf("query-spill", *qspillArg),
		SpillDir:         *spillDir,
	}

	db, err := tde.Open(*dbPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdeserve:", err)
		os.Exit(1)
	}
	srv := serve.New(db, cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tdeserve: serving %s on %s (max-concurrent=%d queue=%d)\n",
		*dbPath, *addr, cfg.MaxConcurrent, cfg.MaxQueue)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "tdeserve:", err)
		db.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "tdeserve: draining...")
	// Order matters: stop admitting and retire executions first (Drain),
	// then close idle/finished HTTP connections, then the database.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	_ = srv.Drain(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "tdeserve: shutdown:", err)
	}
	<-errc // ListenAndServe has returned ErrServerClosed
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tdeserve: close:", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "tdeserve: drained (completed=%d shed=%d aborted=%d)\n",
		st.Completed, st.Shed, st.Aborted)
}
