package tde

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tde/internal/iofault"
	"tde/internal/wal"
)

// walCrashSeeds sets how many randomized workloads the write-path crash
// harness replays; CI raises it (go test . -walcrashseeds 128 -race).
var walCrashSeeds = flag.Int("walcrashseeds", 12, "randomized workloads for the write-path crash harness")

// crashWorkload is one seed's deterministic script: a base database and a
// sequence of transactions (each a list of DML statements).
type crashWorkload struct {
	path string
	txns [][]string
}

// makeCrashWorkload builds a randomized base database file (via the real
// filesystem) and a DML script over it.
func makeCrashWorkload(t *testing.T, rng *rand.Rand, dir string) crashWorkload {
	t.Helper()
	var csv strings.Builder
	csv.WriteString("status,amount,when\n")
	statuses := []string{"open", "closed", "hold", "lost"}
	for i := 0; i < 3+rng.Intn(30); i++ {
		fmt.Fprintf(&csv, "%s,%d,2014-0%d-1%d\n",
			statuses[rng.Intn(len(statuses))], rng.Intn(100), 1+rng.Intn(9), rng.Intn(9))
	}
	mem := New()
	if err := mem.ImportCSV("orders", []byte(csv.String()), DefaultImportOptions()); err != nil {
		t.Fatal(err)
	}
	if err := mem.ImportCSV("tags", []byte("k,v\nred,1\nblue,2\ngreen,3\n"), DefaultImportOptions()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "db.tde")
	if err := mem.Save(path); err != nil {
		t.Fatal(err)
	}

	stmt := func() string {
		switch rng.Intn(5) {
		case 0, 1:
			return fmt.Sprintf("INSERT INTO orders VALUES ('%s', %d, DATE '2014-0%d-1%d')",
				statuses[rng.Intn(len(statuses))], rng.Intn(200), 1+rng.Intn(9), rng.Intn(9))
		case 2:
			return fmt.Sprintf("UPDATE orders SET amount = amount + %d WHERE amount < %d",
				1+rng.Intn(20), rng.Intn(150))
		case 3:
			return fmt.Sprintf("DELETE FROM orders WHERE amount > %d", 80+rng.Intn(150))
		default:
			return fmt.Sprintf("UPDATE tags SET v = v + 1 WHERE v < %d", 1+rng.Intn(9))
		}
	}
	ntx := 2 + rng.Intn(2)
	txns := make([][]string, ntx)
	for i := range txns {
		txns[i] = make([]string, 1+rng.Intn(3))
		for j := range txns[i] {
			txns[i][j] = stmt()
		}
	}
	return crashWorkload{path: path, txns: txns}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// runTxns executes the script, committing each transaction; it returns
// how many transactions reported a successful commit and stops at the
// first error (after the injected kill everything fails anyway).
func runTxns(db *Database, txns [][]string) int {
	committed := 0
	for _, stmts := range txns {
		tx, err := db.Begin()
		if err != nil {
			return committed
		}
		ok := true
		for _, s := range stmts {
			if _, err := tx.Exec(s); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			_ = tx.Rollback()
			return committed
		}
		if err := tx.Commit(); err != nil {
			return committed
		}
		committed++
	}
	return committed
}

// oracleStates replays the script prefix by prefix on a pristine copy and
// dumps the visible state after 0..n committed transactions. These are
// the only states a crash may ever recover to.
func oracleStates(t *testing.T, w crashWorkload, dir string) [][]string {
	t.Helper()
	path := filepath.Join(dir, "oracle.tde")
	copyFile(t, w.path, path)
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	states := [][]string{sortedDump(t, db)}
	for i, stmts := range w.txns {
		tx, err := db.Begin()
		if err != nil {
			t.Fatalf("oracle txn %d: %v", i, err)
		}
		for _, s := range stmts {
			if _, err := tx.Exec(s); err != nil {
				t.Fatalf("oracle txn %d %q: %v", i, s, err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("oracle txn %d commit: %v", i, err)
		}
		states = append(states, sortedDump(t, db))
	}
	return states
}

// stateIndex returns the highest oracle state matching dump. Highest, not
// first: a transaction whose statements all matched zero rows leaves the
// state unchanged, so adjacent states can be identical and the later index
// is the one that satisfies the durability bound.
func stateIndex(states [][]string, dump []string) int {
	for i := len(states) - 1; i >= 0; i-- {
		if reflect.DeepEqual(states[i], dump) {
			return i
		}
	}
	return -1
}

// assertNoTempLitter sweeps with a zero cutoff and checks nothing with a
// temp prefix survives in the database directory.
func assertNoTempLitter(t *testing.T, dir string, context string) {
	t.Helper()
	if _, err := wal.SweepTemps(dir, 0); err != nil {
		t.Fatalf("%s: sweep: %v", context, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tde-") {
			t.Fatalf("%s: temp litter %q survived the sweep", context, e.Name())
		}
	}
}

// TestWALCrashConsistency is the write path's kill-point harness: a
// transaction workload is replayed with the process killed at every
// numbered I/O operation (torn final write, then total I/O silence), and
// after each kill the database must reopen to exactly one of the states
// "after j committed transactions" — with j at least the number of
// commits that reported success before the kill. Transactions are
// all-or-nothing: no partial statement effects can ever survive.
func TestWALCrashConsistency(t *testing.T) {
	for seed := 0; seed < *walCrashSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))
			dir := t.TempDir()
			w := makeCrashWorkload(t, rng, dir)
			states := oracleStates(t, w, t.TempDir())

			// Probe run: count the workload's kill points fault-free.
			probeDir := t.TempDir()
			probePath := filepath.Join(probeDir, "db.tde")
			copyFile(t, w.path, probePath)
			probe := iofault.NewInjector(nil)
			pdb, _, err := OpenWithOptions(probePath, OpenOptions{FS: probe})
			if err != nil {
				t.Fatal(err)
			}
			if got := runTxns(pdb, w.txns); got != len(w.txns) {
				t.Fatalf("fault-free run committed %d of %d", got, len(w.txns))
			}
			n := probe.Ops()
			if n < 10 {
				t.Fatalf("implausibly few kill points (%d): %v", n, probe.Log())
			}

			workDir := t.TempDir()
			work := filepath.Join(workDir, "db.tde")
			for k := 1; k <= n; k++ {
				copyFile(t, w.path, work)
				_ = os.Remove(wal.Path(work))
				inj := iofault.NewInjector(nil)
				inj.KillAtOp(k, rng.Intn(1<<12))

				committed := 0
				if db, _, err := OpenWithOptions(work, OpenOptions{FS: inj}); err == nil {
					committed = runTxns(db, w.txns)
				}

				// Recovery: reopening through the real filesystem must
				// always succeed and land exactly on an oracle state.
				rdb, err := Open(work)
				if err != nil {
					t.Fatalf("kill at op %d: recovery open failed: %v\nops: %v", k, err, inj.Log())
				}
				dump := sortedDump(t, rdb)
				j := stateIndex(states, dump)
				if j < 0 {
					t.Fatalf("kill at op %d: recovered state matches no transaction prefix\nops: %v\nstate: %v",
						k, inj.Log(), dump)
				}
				if j < committed {
					t.Fatalf("kill at op %d: %d commits reported durable but only %d recovered\nops: %v",
						k, committed, j, inj.Log())
				}
				assertNoTempLitter(t, workDir, fmt.Sprintf("kill at op %d", k))
			}
		})
	}
}

// TestMergeCrashConsistency kills Compact at every injectable operation:
// whatever survives — old base + live WAL, new base + stale WAL, or any
// torn intermediate — must reopen to exactly the pre-merge visible state.
func TestMergeCrashConsistency(t *testing.T) {
	seeds := *walCrashSeeds
	if seeds > 32 {
		seeds = 32 // merges are the expensive phase; cap the fan-out
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed) + 7777))
			dir := t.TempDir()
			w := makeCrashWorkload(t, rng, dir)

			// Commit the whole workload cleanly; the resulting base+WAL
			// pair is the precondition every kill run restarts from.
			db, err := Open(w.path)
			if err != nil {
				t.Fatal(err)
			}
			if got := runTxns(db, w.txns); got != len(w.txns) {
				t.Fatalf("setup committed %d of %d", got, len(w.txns))
			}
			final := sortedDump(t, db)
			baseBytes, err := os.ReadFile(w.path)
			if err != nil {
				t.Fatal(err)
			}
			walBytes, err := os.ReadFile(wal.Path(w.path))
			if err != nil {
				t.Fatal(err)
			}

			// Probe: count open+compact kill points.
			probeDir := t.TempDir()
			probePath := filepath.Join(probeDir, "db.tde")
			restore := func(t *testing.T, path string) {
				t.Helper()
				if err := os.WriteFile(path, baseBytes, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(wal.Path(path), walBytes, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			restore(t, probePath)
			probe := iofault.NewInjector(nil)
			pdb, _, err := OpenWithOptions(probePath, OpenOptions{FS: probe})
			if err != nil {
				t.Fatal(err)
			}
			if err := pdb.Compact(); err != nil {
				t.Fatal(err)
			}
			n := probe.Ops()
			if n < 8 {
				t.Fatalf("implausibly few kill points (%d): %v", n, probe.Log())
			}

			workDir := t.TempDir()
			work := filepath.Join(workDir, "db.tde")
			for k := 1; k <= n; k++ {
				restore(t, work)
				inj := iofault.NewInjector(nil)
				inj.KillAtOp(k, rng.Intn(1<<12))
				if kdb, _, err := OpenWithOptions(work, OpenOptions{FS: inj}); err == nil {
					_ = kdb.Compact() // may fail: the kill lands mid-merge
				}
				rdb, err := Open(work)
				if err != nil {
					t.Fatalf("kill at op %d: recovery open failed: %v\nops: %v", k, err, inj.Log())
				}
				if dump := sortedDump(t, rdb); !reflect.DeepEqual(dump, final) {
					t.Fatalf("kill at op %d: merge changed visible state\nops: %v\ngot:  %v\nwant: %v",
						k, inj.Log(), dump, final)
				}
				assertNoTempLitter(t, workDir, fmt.Sprintf("kill at op %d", k))
			}

			// Fault-free compact lands the merged state and retires the WAL.
			restore(t, work)
			cdb, err := Open(work)
			if err != nil {
				t.Fatal(err)
			}
			if err := cdb.Compact(); err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(wal.Path(work)); err == nil {
				t.Fatal("compact left the WAL sidecar behind")
			}
			rdb, err := Open(work)
			if err != nil {
				t.Fatal(err)
			}
			if dump := sortedDump(t, rdb); !reflect.DeepEqual(dump, final) {
				t.Fatalf("fault-free compact changed visible state\ngot:  %v\nwant: %v", dump, final)
			}
		})
	}
}
