package tde

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

const ordersCSV = `status,amount,when
open,10,2014-01-05
closed,25,2014-01-20
open,5,2014-02-11
closed,40,2014-02-28
open,15,2014-03-03
`

func importOrders(t *testing.T) *Database {
	t.Helper()
	db := New()
	if err := db.ImportCSV("orders", []byte(ordersCSV), DefaultImportOptions()); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestImportAndQuery(t *testing.T) {
	db := importOrders(t)
	if db.Rows("orders") != 5 {
		t.Fatalf("rows %d", db.Rows("orders"))
	}
	res, err := db.Query("SELECT status, SUM(amount) FROM orders GROUP BY status ORDER BY status")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups %v", res.Rows)
	}
	if res.Rows[0][0] != "closed" || res.Rows[0][1] != "65" {
		t.Fatalf("closed group %v", res.Rows[0])
	}
	if res.Rows[1][0] != "open" || res.Rows[1][1] != "30" {
		t.Fatalf("open group %v", res.Rows[1])
	}
}

func TestStringFilterUsesInvisibleJoin(t *testing.T) {
	db := importOrders(t)
	res, err := db.Query("SELECT COUNT(*) FROM orders WHERE status = 'open'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "3" {
		t.Fatalf("count %v", res.Rows)
	}
	if !strings.Contains(res.Plan, "DictionaryTable") {
		t.Errorf("plan did not use the invisible join: %s", res.Plan)
	}
}

func TestSaveAndOpen(t *testing.T) {
	db := importOrders(t)
	path := filepath.Join(t.TempDir(), "orders.tde")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db2.Query("SELECT MAX(amount) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "40" {
		t.Fatalf("max %v", res.Rows)
	}
}

func TestColumnsInspection(t *testing.T) {
	db := importOrders(t)
	cols, err := db.Columns("orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("%d columns", len(cols))
	}
	byName := map[string]ColumnInfo{}
	for _, c := range cols {
		byName[c.Name] = c
	}
	if byName["status"].Type != "str" || byName["amount"].Type != "int" || byName["when"].Type != "date" {
		t.Fatalf("types wrong: %+v", byName)
	}
	if !byName["status"].HeapSorted {
		t.Error("status heap should be sorted (small domain)")
	}
	if byName["status"].Cardinality != 2 || !byName["status"].CardinalityExact {
		t.Errorf("status cardinality %d", byName["status"].Cardinality)
	}
	if !byName["when"].Sorted || !byName["when"].SortedKnown {
		t.Error("when column should be detected sorted")
	}
}

func TestCompressColumnEnablesDictPlan(t *testing.T) {
	// A bigger date table so the conversion is meaningful.
	var sb strings.Builder
	sb.WriteString("d,v\n")
	for i := 0; i < 5000; i++ {
		sb.WriteString(fmt.Sprintf("2013-%02d-%02d,%d\n", i%12+1, i%28+1, i%100))
	}
	db := New()
	if err := db.ImportCSV("t", []byte(sb.String()), DefaultImportOptions()); err != nil {
		t.Fatal(err)
	}
	if err := db.CompressColumn("t", "d"); err != nil {
		t.Fatal(err)
	}
	cols, _ := db.Columns("t")
	var d ColumnInfo
	for _, c := range cols {
		if c.Name == "d" {
			d = c
		}
	}
	if d.DictionarySize == 0 {
		t.Fatal("date column not dictionary compressed")
	}
	res, err := db.Query("SELECT COUNT(*) FROM t WHERE d >= DATE '2013-06-01' AND d < DATE '2013-07-01'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "DictionaryTable") {
		t.Errorf("compressed date filter should use the invisible join: %s", res.Plan)
	}
	// Cross-check against the control plan.
	want := 0
	for i := 0; i < 5000; i++ {
		if i%12+1 == 6 {
			want++
		}
	}
	if res.Rows[0][0] != fmt.Sprint(want) {
		t.Fatalf("count %v want %d", res.Rows[0][0], want)
	}
}

func TestQueryErrors(t *testing.T) {
	db := importOrders(t)
	if _, err := db.Query("SELECT x FROM nosuch"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.Query("NOT SQL AT ALL"); err == nil {
		t.Error("garbage accepted")
	}
	if err := db.ImportCSV("orders", []byte("a\n1\n"), DefaultImportOptions()); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestExplain(t *testing.T) {
	db := importOrders(t)
	p, err := db.Explain("SELECT COUNT(*) FROM orders WHERE amount > 10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "Scan") {
		t.Errorf("explain output %q", p)
	}
}

func TestSchemaOverride(t *testing.T) {
	db := New()
	opt := DefaultImportOptions()
	opt.Schema = []string{"code:str", "n:int"}
	opt.HeaderSet, opt.HasHeader = true, false
	if err := db.ImportCSV("t", []byte("007,1\n008,2\n"), opt); err != nil {
		t.Fatal(err)
	}
	cols, _ := db.Columns("t")
	if cols[0].Type != "str" {
		t.Fatalf("schema override ignored: %v", cols[0].Type)
	}
	res, _ := db.Query("SELECT code FROM t WHERE n = 2")
	if res.Rows[0][0] != "008" {
		t.Fatalf("rows %v", res.Rows)
	}
}

func TestCollationOption(t *testing.T) {
	db := New()
	opt := DefaultImportOptions()
	opt.Collation = "ci"
	// An all-string file cannot header-detect (every value parses as a
	// string), so declare the header explicitly.
	opt.HeaderSet, opt.HasHeader = true, true
	opt.Schema = []string{"w:str"}
	if err := db.ImportCSV("t", []byte("w\nApple\nAPPLE\napple\n"), opt); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT COUNTD(w) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "1" {
		t.Fatalf("case-insensitive countd %v", res.Rows)
	}
	if _, ok := interface{}(opt).(ImportOptions); !ok {
		t.Fatal("unreachable")
	}
	if err := db.ImportCSV("bad", []byte("x\n1\n"), ImportOptions{Collation: "klingon"}); err == nil {
		t.Error("bad collation accepted")
	}
}

func TestLimitAndHavingThroughAPI(t *testing.T) {
	db := importOrders(t)
	res, err := db.Query("SELECT amount FROM orders ORDER BY amount DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "40" || res.Rows[1][0] != "25" {
		t.Fatalf("top-2 %v", res.Rows)
	}
	if !strings.Contains(res.Plan, "TopN") {
		t.Errorf("ORDER BY + LIMIT should plan a TopN: %s", res.Plan)
	}
	res, err = db.Query("SELECT status, SUM(amount) AS s FROM orders GROUP BY status HAVING s > 40")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "closed" {
		t.Fatalf("having result %v", res.Rows)
	}
}

func TestMonthRollupThroughAPI(t *testing.T) {
	db := importOrders(t)
	res, err := db.Query("SELECT MONTH(when) AS m, COUNT(*) FROM orders GROUP BY m ORDER BY m")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("months %v", res.Rows)
	}
	if res.Rows[0][1] != "2" || res.Rows[1][1] != "2" || res.Rows[2][1] != "1" {
		t.Fatalf("month counts %v", res.Rows)
	}
}

func TestTimestampEndToEnd(t *testing.T) {
	db := New()
	csv := "ts,v\n2014-06-22 08:30:00,1\n2014-06-22 14:45:30,2\n2014-06-23 09:00:00,3\n"
	if err := db.ImportCSV("events", []byte(csv), DefaultImportOptions()); err != nil {
		t.Fatal(err)
	}
	cols, _ := db.Columns("events")
	if cols[0].Type != "timestamp" {
		t.Fatalf("ts inferred as %s", cols[0].Type)
	}
	res, err := db.Query("SELECT MIN(ts), MAX(ts), COUNT(*) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "2014-06-22 08:30:00" || res.Rows[0][1] != "2014-06-23 09:00:00" {
		t.Fatalf("timestamp range %v", res.Rows[0])
	}
}

func TestSelectStar(t *testing.T) {
	db := importOrders(t)
	res, err := db.Query("SELECT * FROM orders ORDER BY amount LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 || len(res.Rows) != 1 {
		t.Fatalf("select * shape: %v %v", res.Columns, res.Rows)
	}
	if res.Rows[0][1] != "5" {
		t.Fatalf("cheapest order %v", res.Rows[0])
	}
	if _, err := db.Query("SELECT *, COUNT(*) FROM orders"); err == nil {
		t.Error("star mixed with aggregation accepted")
	}
}

func TestJoinThroughPublicAPI(t *testing.T) {
	db := importOrders(t)
	sopt := DefaultImportOptions()
	// All-string files cannot header-detect; declare it.
	sopt.HeaderSet, sopt.HasHeader = true, true
	sopt.Schema = []string{"code:str", "label:str"}
	if err := db.ImportCSV("statuses", []byte("code,label\nopen,active\nclosed,done\n"), sopt); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT label, SUM(amount) FROM orders
	                      JOIN statuses ON orders.status = statuses.code
	                      GROUP BY label ORDER BY label`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "active" || res.Rows[0][1] != "30" {
		t.Fatalf("join rows %v", res.Rows)
	}
	if res.Rows[1][0] != "done" || res.Rows[1][1] != "65" {
		t.Fatalf("join rows %v", res.Rows)
	}
}
