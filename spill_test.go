package tde

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"tde/internal/iofault"
	"tde/internal/plan"
	"tde/internal/spill"
)

// spillTestDB builds a database sized so the spill tests' queries blow
// small memory budgets: a 20k-row fact table with a high-cardinality
// group key and a 12k-row dimension joined on it.
func spillTestDB(t testing.TB) *Database {
	t.Helper()
	db := New()
	var fact strings.Builder
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&fact, "%d,%d.%02d,name-%d\n", i%6000, i%97, i%100, i%factStrings)
	}
	opt := DefaultImportOptions()
	opt.Schema = []string{"k:int", "v:real", "s:str"}
	opt.HeaderSet, opt.HasHeader = true, false
	if err := db.ImportCSV("t", []byte(fact.String()), opt); err != nil {
		t.Fatal(err)
	}
	var dim strings.Builder
	for i := 0; i < 12000; i++ {
		fmt.Fprintf(&dim, "%d,dim-%d\n", i, i%1000)
	}
	opt = DefaultImportOptions()
	opt.Schema = []string{"dkey:int", "dval:str"}
	opt.HeaderSet, opt.HasHeader = true, false
	if err := db.ImportCSV("d", []byte(dim.String()), opt); err != nil {
		t.Fatal(err)
	}
	return db
}

const factStrings = 400 // distinct strings in the fact table

// sortedRows canonicalizes a result for order-insensitive comparison.
func sortedRows(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\x00")
	}
	sort.Strings(out)
	return out
}

// runSpillOracle compares sql under budget+spill (workers 1, 2, 8)
// against the unbudgeted serial oracle and requires an actual spill.
func runSpillOracle(t *testing.T, db *Database, sql string, mem int64) {
	t.Helper()
	oracle, err := db.QueryContext(context.Background(), sql, QueryOptions{
		Plan: planWorkers(-1)})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	want := sortedRows(oracle.Rows)
	for _, workers := range []int{1, 2, 8} {
		dir := t.TempDir()
		res, err := db.QueryContext(context.Background(), sql, QueryOptions{
			MemoryBudget: mem,
			SpillBudget:  1 << 30,
			SpillDir:     dir,
			Plan:         planWorkers(workers),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := sortedRows(res.Rows); !rowsMatch(want, got) {
			t.Fatalf("workers=%d: %d rows differ from oracle's %d\nfirst got: %.200s",
				workers, len(got), len(want), strings.Join(got[:min(3, len(got))], " | "))
		}
		if !res.Stats().Spilled() || res.Stats().SpillPeak == 0 {
			t.Fatalf("workers=%d: query under %d-byte budget did not spill (stats %+v)",
				workers, mem, res.Stats())
		}
		if !strings.Contains(res.Plan, "Spill[") {
			t.Fatalf("workers=%d: plan lacks the spill summary: %s", workers, res.Plan)
		}
		assertNoSpillFiles(t, dir)
	}
}

func planWorkers(n int) plan.Options {
	return plan.Options{ParallelWorkers: n}
}

// rowsMatch compares two canonical row sets cell-wise, tolerating the
// tiny float divergence that re-associating SUM/AVG across spill
// partitions may introduce — exactly the tolerance the differential
// harness grants parallel plans.
func rowsMatch(want, got []string) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if want[i] == got[i] {
			continue
		}
		wc := strings.Split(want[i], "\x00")
		gc := strings.Split(got[i], "\x00")
		if len(wc) != len(gc) {
			return false
		}
		for j := range wc {
			if !cellsClose(wc[j], gc[j]) {
				return false
			}
		}
	}
	return true
}

func cellsClose(a, b string) bool {
	if a == b {
		return true
	}
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA != nil || errB != nil {
		return false
	}
	diff := math.Abs(fa - fb)
	scale := math.Max(1, math.Max(math.Abs(fa), math.Abs(fb)))
	return diff <= 1e-9*scale
}

// assertNoSpillFiles fails if any spill artifact survived under dir.
func assertNoSpillFiles(t testing.TB, dir string) {
	t.Helper()
	var left []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && path != dir {
			left = append(left, path)
		}
		return nil
	})
	if len(left) > 0 {
		t.Fatalf("spill artifacts left behind: %v", left)
	}
}

func TestSpillAggregationMatchesOracle(t *testing.T) {
	db := spillTestDB(t)
	runSpillOracle(t, db,
		"SELECT k, COUNT(*), SUM(v), MIN(s), MAX(s) FROM t GROUP BY k", 128<<10)
}

func TestSpillJoinMatchesOracle(t *testing.T) {
	db := spillTestDB(t)
	runSpillOracle(t, db,
		"SELECT dval, COUNT(*), SUM(v) FROM t JOIN d ON k = dkey GROUP BY dval", 96<<10)
}

func TestSpillSortMatchesOracle(t *testing.T) {
	db := spillTestDB(t)
	runSpillOracle(t, db, "SELECT s, v, k FROM t ORDER BY s, v, k", 128<<10)
}

// TestSpillBudgetZeroFailsFast pins the opt-in contract: without a
// SpillBudget the same queries fail with ErrBudgetExceeded instead of
// degrading.
func TestSpillBudgetZeroFailsFast(t *testing.T) {
	db := spillTestDB(t)
	for _, sql := range []string{
		"SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k",
		"SELECT dval, COUNT(*) FROM t JOIN d ON k = dkey GROUP BY dval",
		"SELECT s, v FROM t ORDER BY s, v",
	} {
		_, err := db.QueryContext(context.Background(), sql, QueryOptions{
			MemoryBudget: 64 << 10,
		})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("%s: want ErrBudgetExceeded, got %v", sql, err)
		}
	}
}

// TestSpillDiskBudgetExceeded: a spill budget too small for the state
// being evicted must surface as a budget error after the degradation
// ladder is exhausted — never a panic or a wrong answer.
func TestSpillDiskBudgetExceeded(t *testing.T) {
	db := spillTestDB(t)
	dir := t.TempDir()
	_, err := db.QueryContext(context.Background(),
		"SELECT k, COUNT(*), SUM(v), MIN(s) FROM t GROUP BY k", QueryOptions{
			MemoryBudget: 64 << 10,
			SpillBudget:  2 << 10, // room for almost nothing
			SpillDir:     dir,
		})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want a budget error, got %v", err)
	}
	assertNoSpillFiles(t, dir)
}

// spillFaultCase runs one budgeted query with a scripted spill-I/O fault
// and checks the outcome is a typed error or a correct answer — and that
// no spill file survives either way.
func spillFaultCase(t *testing.T, name string, fault iofault.Fault, wantErr func(error) bool) {
	t.Run(name, func(t *testing.T) {
		db := spillTestDB(t)
		dir := t.TempDir()
		inj := iofault.NewInjector(nil)
		inj.Script(fault)
		res, err := db.QueryContext(context.Background(),
			"SELECT k, COUNT(*), SUM(v), MIN(s) FROM t GROUP BY k", QueryOptions{
				MemoryBudget: 128 << 10,
				SpillBudget:  1 << 30,
				SpillDir:     dir,
				SpillFS:      inj,
			})
		if err != nil {
			var ie *InternalError
			if errors.As(err, &ie) {
				t.Fatalf("fault escaped as a contained panic: %v", err)
			}
			if wantErr != nil && !wantErr(err) {
				t.Fatalf("fault surfaced as the wrong error type: %v", err)
			}
		} else {
			// The ENOSPC ladder may absorb a transient fault; the answer
			// must then be correct.
			oracle, oerr := db.QueryContext(context.Background(),
				"SELECT k, COUNT(*), SUM(v), MIN(s) FROM t GROUP BY k", QueryOptions{})
			if oerr != nil {
				t.Fatal(oerr)
			}
			if !rowsMatch(sortedRows(oracle.Rows), sortedRows(res.Rows)) {
				t.Fatal("query absorbed an injected fault but returned a wrong answer")
			}
		}
		assertNoSpillFiles(t, dir)
	})
}

func TestSpillFaultInjection(t *testing.T) {
	isSpillErr := func(err error) bool { return errors.Is(err, spill.ErrSpill) }
	spillFaultCase(t, "torn-write",
		iofault.Fault{Op: iofault.OpWrite, AtCount: 3, Tear: 10, Once: true}, isSpillErr)
	spillFaultCase(t, "enospc-hard",
		iofault.Fault{Op: iofault.OpWrite, AtCount: 2, Err: syscall.ENOSPC}, isSpillErr)
	spillFaultCase(t, "enospc-once",
		iofault.Fault{Op: iofault.OpWrite, AtCount: 2, Err: syscall.ENOSPC, Once: true}, isSpillErr)
	spillFaultCase(t, "bit-flip", iofault.Fault{
		Op: iofault.OpRead, AtCount: 2, FlipByteOffset: 40, FlipBitMask: 0x10, Once: true,
	}, func(err error) bool { return errors.Is(err, ErrCorrupt) })
}

// TestSpillCancellationCleanup: a query cancelled mid-spill must remove
// every spill artifact on its way out.
func TestSpillCancellationCleanup(t *testing.T) {
	db := spillTestDB(t)
	dir := t.TempDir()
	_, err := db.QueryContext(context.Background(),
		"SELECT dval, COUNT(*), SUM(v), MIN(s) FROM t JOIN d ON k = dkey GROUP BY dval",
		QueryOptions{
			MemoryBudget: 96 << 10,
			SpillBudget:  1 << 30,
			SpillDir:     dir,
			Timeout:      3 * time.Millisecond,
		})
	if err == nil {
		t.Skip("query finished before the deadline; nothing to observe")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	assertNoSpillFiles(t, dir)
}

// TestSpillOrphanSweep fabricates crashed-process leftovers and checks
// Open removes exactly the stale tde-spill-* entries.
func TestSpillOrphanSweep(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)

	stale := filepath.Join(tmp, spill.Prefix+"dead1")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "part-0"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(tmp, spill.Prefix+"live1") // a live query of another process
	if err := os.MkdirAll(fresh, 0o755); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(tmp, "unrelated-dir")
	if err := os.MkdirAll(other, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(other, old, old); err != nil {
		t.Fatal(err)
	}

	// Open a throwaway database; its best-effort sweep must fire.
	db := spillTestDBSmall(t)
	path := filepath.Join(t.TempDir(), "x.tde")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale spill dir survived the open sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("sweep removed a fresh spill dir that may belong to a live query")
	}
	if _, err := os.Stat(other); err != nil {
		t.Fatal("sweep removed an unrelated directory")
	}
}

func spillTestDBSmall(t testing.TB) *Database {
	t.Helper()
	db := New()
	opt := DefaultImportOptions()
	opt.Schema = []string{"k:int"}
	opt.HeaderSet, opt.HasHeader = true, false
	if err := db.ImportCSV("m", []byte("1\n2\n3\n"), opt); err != nil {
		t.Fatal(err)
	}
	return db
}
